//! Regenerates every table and figure of the SSDExplorer paper's evaluation.
//!
//! Run with `cargo run --release -p ssdx-bench --bin experiments -- [all|fig2|fig3|fig4|fig5|fig6|speed|speedup|tails|faults|tables]`.
//! Results are printed as aligned text tables; every section renders into
//! one shared `fmt::Write` buffer that is printed (and reused) per section,
//! so table formatting never allocates a `String` per cell.
//!
//! The `tails` subcommand runs the tail-latency study: the generative
//! workload suite (zipfian-skewed, bursty on/off, mixed block sizes,
//! read-modify-write) on a steady-state platform, reporting p50/p95/p99/
//! p99.9 per command class with the first eighth of each stream trimmed as
//! warmup. The output is fully deterministic (`--json` emits the
//! machine-readable form, `--warm-start` forks each run from a per-workload
//! warmup snapshot and prints byte-identical results).
//!
//! The `faults` subcommand runs the degraded-device campaign: five
//! fault/aging axes (artificial endurance aging, read-disturb growth,
//! retention error scaling, block retirement, mid-GC power loss with
//! recovery replay), each swept on a page-mapped steady-state platform and
//! reported as per-class tail percentiles. Same flags as `tails`: `--json`
//! emits the machine-readable form, `--warm-start` forks every scenario
//! from a warmup snapshot, and the output is byte-identical either way.
//!
//! The `speed` subcommand is the simulation-speed measurement suite:
//!
//! * `speed` — human-readable table of the fig6-style baseline;
//! * `speed --json` — machine-readable `BENCH_speed.json` emission on
//!   stdout (what CI uploads as an artifact);
//! * `speed --gate <path>` — regression gate: re-measures and exits
//!   non-zero if commands/sec dropped more than 25 % below the committed
//!   baseline at `<path>`. Skips gracefully on 1-core runners and when
//!   `SSDX_SPEED_GATE=skip` is set (cold caches make the numbers
//!   meaningless).

use ssdx_core::configs::{fig5_config, ocz_vertex_like, table2_configs, table3_configs};
use ssdx_core::{
    explorer, faults, metrics, speed, CachePolicy, HostInterfaceConfig, ParallelExecutor,
    SpeedBaseline, Ssd, SsdConfig, SteadyStateCutoff,
};
use ssdx_ecc::EccScheme;
use ssdx_hostif::{AccessPattern, Workload};
use std::fmt::Write as _;

/// Paper-reported throughput of the OCZ Vertex 120 GB (values read from
/// Fig. 2 of the paper; the figure is plotted, not tabulated, so these are
/// approximations used as the validation reference).
const OCZ_REFERENCE_MBPS: [(AccessPattern, f64); 4] = [
    (AccessPattern::SequentialWrite, 160.0),
    (AccessPattern::SequentialRead, 200.0),
    (AccessPattern::RandomWrite, 22.0),
    (AccessPattern::RandomRead, 145.0),
];

/// Commands per configuration for the speed suite (same sizing as the fig6
/// bench targets).
const SPEED_COMMANDS: u64 = 8_192;
/// Timed repeats per configuration in the speed suite (fastest kept).
const SPEED_REPEATS: u32 = 3;
/// The gate fails when commands/sec drops below this fraction of baseline.
const SPEED_GATE_FLOOR: f64 = 0.75;

fn fig2_commands() -> u64 {
    // 1 GiB of 4 KB commands: large enough that the 64 MB write cache of the
    // modelled drive is a small fraction of the run and the reported
    // throughput reflects the steady state, as a real IOZone run would.
    262_144
}

fn sweep_commands() -> u64 {
    24_576
}

fn sweep_workload() -> Workload {
    Workload::builder(AccessPattern::SequentialWrite)
        .command_count(sweep_commands())
        .build()
}

/// Shrinks the per-buffer cache so that the sweep workload is much larger
/// than the aggregate write cache and the reported throughput reflects the
/// steady state rather than the cache-fill transient.
fn steady_state(mut cfg: SsdConfig) -> SsdConfig {
    cfg.dram_buffer_capacity = 128 * 1024;
    cfg
}

fn section(out: &mut String, title: &str) {
    let _ = writeln!(
        out,
        "=============================================================="
    );
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "=============================================================="
    );
}

fn fig2_validation(out: &mut String) {
    section(
        out,
        "Fig. 2 — validation against the OCZ Vertex 120 GB (SATA II)",
    );
    let config = ocz_vertex_like();
    let _ = writeln!(
        out,
        "configuration: {} ({})\n",
        config.name,
        config.architecture_label()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>8}",
        "workload", "SSDExplorer", "OCZ Vertex", "error"
    );
    let mut ssd = Ssd::new(config);
    for (pattern, reference) in OCZ_REFERENCE_MBPS {
        let workload = Workload::builder(pattern)
            .command_count(fig2_commands())
            .footprint_bytes(8 << 30)
            .build();
        let report = ssd.simulate(&workload);
        let error = (report.throughput_mbps - reference).abs() / reference * 100.0;
        // Width specifiers need a sized Display value, so the composite
        // label is the one small per-row string this driver still builds
        // (four rows total — not a hot path).
        let label = format!("{} ({})", pattern.label(), report.policy);
        let _ = writeln!(
            out,
            "{label:<18} {:>9.1} MB/s {:>9.1} MB/s {:>7.1}%",
            report.throughput_mbps, reference, error
        );
    }
    let _ = writeln!(out);
}

fn print_table2(out: &mut String) {
    section(
        out,
        "Table II — SSD configurations for the design-point search",
    );
    for c in table2_configs() {
        let _ = writeln!(out, "{:<5} {}", c.name, c.architecture_label());
    }
    let _ = writeln!(out);
}

fn print_table3(out: &mut String) {
    section(
        out,
        "Table III — SSD configurations for the simulation-speed study",
    );
    for c in table3_configs() {
        let _ = writeln!(out, "{:<5} {}", c.name, c.architecture_label());
    }
    let _ = writeln!(out);
}

fn fig3_sata_sweep(out: &mut String) {
    section(out, "Fig. 3 — Sequential Write, SATA II host interface");
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();
    let sweep =
        explorer::host_interface_study(HostInterfaceConfig::Sata2, &configs, &sweep_workload())
            .expect("table configurations validate");
    out.push_str(&sweep.to_table());
    if let Some(best) = sweep.optimal_design_point(0.95) {
        let _ = writeln!(
            out,
            "optimal design point (cache policy): {} ({} dies)",
            best.config_name, best.total_dies
        );
    }
    let no_cache_best = sweep
        .points
        .iter()
        .min_by_key(|p| p.total_dies)
        .map(|p| p.config_name.as_str())
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "no-cache policy: throughput flattens across all configurations, so the search falls on {no_cache_best}\n"
    );
}

fn fig4_pcie_sweep(out: &mut String) {
    section(
        out,
        "Fig. 4 — Sequential Write, PCIe Gen2 x8 + NVMe host interface",
    );
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();
    let sweep = explorer::host_interface_study(
        HostInterfaceConfig::nvme_gen2_x8(),
        &configs,
        &sweep_workload(),
    )
    .expect("table configurations validate");
    out.push_str(&sweep.to_table());
    let saturating = sweep.saturating_points(0.95);
    let _ = write!(out, "configurations saturating the PCIe interface: ");
    if saturating.is_empty() {
        let _ = writeln!(out, "none (the host interface is no longer the bottleneck)");
    } else {
        for (i, p) in saturating.iter().enumerate() {
            let _ = write!(out, "{}{}", if i > 0 { ", " } else { "" }, p.config_name);
        }
        let _ = writeln!(out);
    }
    // With NVMe the no-cache columns track the cached ones and the host
    // interface stops being the bottleneck, so the search is driven by the
    // hardware cost: report the Pareto front of throughput vs controller
    // resources (channels + DRAM buffers).
    let front = sweep.pareto_front();
    let _ = writeln!(
        out,
        "performance/cost Pareto front (throughput vs channels+buffers):"
    );
    for p in &front {
        let _ = writeln!(
            out,
            "  {:<4} {:>7.1} MB/s with {:>2} channels, {:>2} buffers, {:>4} dies",
            p.config_name, p.ssd_cache_mbps, p.channels, p.dram_buffers, p.total_dies
        );
    }
    let _ = writeln!(out);
}

fn fig5_wearout(out: &mut String) {
    section(
        out,
        "Fig. 5 — throughput vs normalized rated endurance (4-CHN/2-WAY/4-DIE)",
    );
    let endurance: Vec<f64> = (0..=5).map(|i| i as f64 * 0.2).collect();
    let base = fig5_config(EccScheme::fixed_bch(40));
    let fixed = explorer::wearout_study(&base, EccScheme::fixed_bch(40), &endurance, 8_192)
        .expect("fig5 configuration validates");
    let adaptive = explorer::wearout_study(&base, EccScheme::adaptive_bch(40), &endurance, 8_192)
        .expect("fig5 configuration validates");
    let _ = writeln!(
        out,
        "{:>10} {:>16} {:>16} {:>17} {:>17}",
        "endurance", "fixed BCH read", "adapt BCH read", "fixed BCH write", "adapt BCH write"
    );
    for (f, a) in fixed.iter().zip(&adaptive) {
        let _ = writeln!(
            out,
            "{:>10.1} {:>11.1} MB/s {:>11.1} MB/s {:>12.1} MB/s {:>12.1} MB/s",
            f.normalized_endurance, f.read_mbps, a.read_mbps, f.write_mbps, a.write_mbps
        );
    }
    let _ = writeln!(out);
}

fn fig6_simulation_speed(out: &mut String) {
    section(
        out,
        "Fig. 6 — simulation speed (KCPS) across the Table III configurations",
    );
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(8_192)
        .build();
    let configs: Vec<SsdConfig> = table3_configs().into_iter().map(steady_state).collect();
    let points = speed::measure_kcps_sweep(&configs, &workload);
    let _ = writeln!(
        out,
        "{:<6} {:<34} {:>10} {:>12} {:>12}",
        "config", "architecture", "KCPS", "wall (s)", "MB/s"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:<6} {:<34} {:>10.1} {:>12.3} {:>12.1}",
            p.config_name, p.architecture, p.kcps, p.wall_seconds, p.throughput_mbps
        );
    }
    let _ = writeln!(out);
}

fn parallel_speedup(out: &mut String) {
    section(
        out,
        "Parallel sweep speedup — sequential Explorer vs ParallelExecutor",
    );
    let machine = ParallelExecutor::new().threads();
    let _ = writeln!(
        out,
        "8-point sweep (channels x cache x seed), {} commands per point; \
         this machine exposes {machine} hardware thread(s)\n",
        sweep_commands() / 4
    );
    print!("{out}");
    out.clear();
    ssdx_bench::print_speedup_series(sweep_commands() / 4);
    let _ = writeln!(
        out,
        "\n(every row is verified byte-identical to the sequential sweep; \
         wall-clock speedup requires the hardware threads to exist)\n"
    );
}

/// Commands per workload in the tail-latency study.
const TAIL_COMMANDS: u64 = 8_192;

/// Builds the tail-latency study on the canonical steady-state platform:
/// one eighth of each stream is trimmed as warmup. With `warm` the warmup
/// prefix is simulated once per workload and every run forks from the
/// captured snapshot — byte-identical output by the fork-equivalence
/// contract, which `tails --warm-start` exists to demonstrate.
fn tail_study(warm: bool) -> ssdx_core::TailStudy {
    let base = steady_state(table2_configs().remove(5));
    let warmup = SteadyStateCutoff::Commands(TAIL_COMMANDS / 8);
    let study = if warm {
        metrics::tail_latency_study_warm(&base, TAIL_COMMANDS, warmup)
    } else {
        metrics::tail_latency_study(&base, TAIL_COMMANDS, warmup)
    };
    study.expect("the table II configuration validates")
}

fn tail_latency(out: &mut String) {
    section(
        out,
        "Tail latency — generative workloads, steady-state percentiles per class",
    );
    let study = tail_study(false);
    let _ = writeln!(
        out,
        "{} commands per workload, first {} trimmed as warmup\n",
        TAIL_COMMANDS,
        TAIL_COMMANDS / 8
    );
    out.push_str(&study.to_table());
    let _ = writeln!(out);
}

/// The tails suite: print the percentile table, or emit JSON with
/// `--json`. `--warm-start` forks every run from a per-workload warmup
/// snapshot instead of replaying the warmup; the output is byte-identical
/// either way. Deterministic — two runs print identical bytes.
fn tails_suite(args: &[String]) -> i32 {
    let study = tail_study(args.iter().any(|a| a == "--warm-start"));
    if args.iter().any(|a| a == "--json") {
        print!("{}", study.to_json());
    } else {
        let mut out = String::new();
        tail_latency(&mut out);
        print!("{out}");
    }
    0
}

/// Commands per scenario in the fault-injection campaign.
const FAULT_COMMANDS: u64 = 2_048;

/// Builds the degraded-device campaign on the canonical steady-state
/// platform: one eighth of each stream is trimmed as warmup. With `warm`
/// every scenario forks from a captured warmup snapshot — byte-identical
/// output by the fork-equivalence contract, which `faults --warm-start`
/// exists to demonstrate.
fn fault_study(warm: bool) -> ssdx_core::FaultStudy {
    let base = steady_state(table2_configs().remove(5));
    let warmup = SteadyStateCutoff::Commands(FAULT_COMMANDS / 8);
    let study = if warm {
        faults::fault_campaign_warm(&base, FAULT_COMMANDS, warmup)
    } else {
        faults::fault_campaign(&base, FAULT_COMMANDS, warmup)
    };
    study.expect("the table II configuration validates")
}

fn fault_scenarios(out: &mut String) {
    section(
        out,
        "Fault injection — degraded-device scenarios, steady-state percentiles per class",
    );
    let study = fault_study(false);
    let _ = writeln!(
        out,
        "{} commands per scenario, first {} trimmed as warmup\n",
        FAULT_COMMANDS,
        FAULT_COMMANDS / 8
    );
    out.push_str(&study.to_table());
    let _ = writeln!(out);
}

/// The faults suite: print the scenario percentile table, or emit JSON
/// with `--json`. `--warm-start` forks every scenario from a warmup
/// snapshot instead of replaying the warmup; the output is byte-identical
/// either way. Deterministic — two runs print identical bytes.
fn faults_suite(args: &[String]) -> i32 {
    let study = fault_study(args.iter().any(|a| a == "--warm-start"));
    if args.iter().any(|a| a == "--json") {
        print!("{}", study.to_json());
    } else {
        let mut out = String::new();
        fault_scenarios(&mut out);
        print!("{out}");
    }
    0
}

fn cache_policy_note(out: &mut String) {
    // Small sanity print showing the two DRAM-buffer policies side by side on
    // the default platform, mirroring the discussion in Section IV-A.
    let workload = sweep_workload();
    for policy in [CachePolicy::WriteCache, CachePolicy::NoCache] {
        let mut cfg = steady_state(table2_configs().remove(5));
        cfg.cache_policy = policy;
        let report = Ssd::new(cfg).simulate(&workload);
        let _ = writeln!(out, "{}", report.summary_line());
    }
    let _ = writeln!(out);
}

/// The simulation-speed suite: measure the fig6-style baseline, then emit
/// it (`--json`), print it, or gate against a committed baseline
/// (`--gate <path>`). Returns the process exit code.
fn speed_suite(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));

    // Graceful gate skips — the measurement and the JSON emission still run
    // (CI uploads them as an artifact either way), only the pass/fail
    // comparison is suppressed: a 1-core runner cannot produce comparable
    // numbers (the committed baseline includes a parallel leg), and an
    // explicit skip env covers cold-cache runs where timing is dominated by
    // I/O. `SSDX_SPEED_GATE=force` runs the comparison regardless.
    let gate_skip = if gate_path.is_some() {
        let mode = std::env::var("SSDX_SPEED_GATE").unwrap_or_default();
        if mode == "skip" {
            Some("SSDX_SPEED_GATE=skip — e.g. cold cache")
        } else if mode != "force" && ParallelExecutor::new().threads() < 2 {
            Some("single hardware thread")
        } else {
            None
        }
    } else {
        None
    };

    let baseline = speed::measure_fig6_baseline(SPEED_COMMANDS, SPEED_REPEATS);

    if json {
        print!("{}", baseline.to_json());
    } else {
        let mut out = String::new();
        section(
            &mut out,
            "Simulation-speed baseline (fig6 methodology, cmds/s)",
        );
        out.push_str(&baseline.to_table());
        print!("{out}");
    }

    if let Some(reason) = gate_skip {
        eprintln!("speed gate: skipped ({reason})");
        return 0;
    }
    if let Some(path) = gate_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("speed gate: cannot read baseline {path}: {e}");
                return 1;
            }
        };
        let Some(reference) = SpeedBaseline::parse_geomean(&committed) else {
            eprintln!("speed gate: no geomean_commands_per_sec field in {path}");
            return 1;
        };
        let measured = baseline.geomean_commands_per_sec;
        let floor = reference * SPEED_GATE_FLOOR;
        eprintln!(
            "speed gate: measured {measured:.0} cmds/s vs committed {reference:.0} \
             (floor {floor:.0})"
        );
        if measured < floor {
            eprintln!(
                "speed gate: FAIL — simulation speed regressed more than {:.0}%",
                (1.0 - SPEED_GATE_FLOOR) * 100.0
            );
            return 1;
        }
        eprintln!("speed gate: ok");
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = args.first().map(String::as_str).unwrap_or("all");
    // One shared render buffer for every section: printed and reused
    // between sections, so the drivers format without per-cell allocations.
    let mut out = String::with_capacity(4 * 1024);
    match arg {
        "fig2" => fig2_validation(&mut out),
        "fig3" => fig3_sata_sweep(&mut out),
        "fig4" => fig4_pcie_sweep(&mut out),
        "fig5" => fig5_wearout(&mut out),
        "fig6" => fig6_simulation_speed(&mut out),
        "speed" => std::process::exit(speed_suite(&args[1..])),
        "speedup" => parallel_speedup(&mut out),
        "tails" => std::process::exit(tails_suite(&args[1..])),
        "faults" => std::process::exit(faults_suite(&args[1..])),
        "tables" => {
            print_table2(&mut out);
            print_table3(&mut out);
        }
        "policies" => cache_policy_note(&mut out),
        _ => {
            // Full run: flush the shared buffer after each section so the
            // output streams while the later (long) experiments still run.
            let sections: [fn(&mut String); 10] = [
                print_table2,
                fig2_validation,
                fig3_sata_sweep,
                fig4_pcie_sweep,
                fig5_wearout,
                tail_latency,
                fault_scenarios,
                print_table3,
                fig6_simulation_speed,
                parallel_speedup,
            ];
            for render in sections {
                render(&mut out);
                print!("{out}");
                out.clear();
            }
        }
    }
    print!("{out}");
}
