//! Shared helpers for the SSDExplorer benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated Criterion
//! bench target in `benches/`; the helpers here keep the workload sizing and
//! the steady-state adjustments consistent across them. The full-size
//! experiment runs (larger workloads, all configurations) live in the
//! `experiments` binary: `cargo run --release -p ssdx-bench --bin experiments`.

use ssdx_core::SsdConfig;
use ssdx_hostif::{AccessPattern, Workload};

/// Number of 4 KB commands used by the bench-sized sweeps (the `experiments`
/// binary uses larger workloads for the recorded numbers).
pub const BENCH_COMMANDS: u64 = 8_192;

/// Shrinks the per-buffer write cache so that bench-sized workloads reach the
/// flash-limited steady state instead of being absorbed by the cache.
pub fn steady_state(mut cfg: SsdConfig) -> SsdConfig {
    cfg.dram_buffer_capacity = 128 * 1024;
    cfg
}

/// The canonical 4 KB sequential-write workload of the paper's sweeps.
pub fn sequential_write_workload(commands: u64) -> Workload {
    Workload::builder(AccessPattern::SequentialWrite)
        .command_count(commands)
        .build()
}

/// A 4 KB workload of the given pattern, sized for benching.
pub fn bench_workload(pattern: AccessPattern, commands: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(commands)
        .footprint_bytes(4 << 30)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_shrinks_the_cache() {
        let cfg = steady_state(SsdConfig::default());
        assert_eq!(cfg.dram_buffer_capacity, 128 * 1024);
    }

    #[test]
    fn workload_helpers_use_4kb_blocks() {
        let w = sequential_write_workload(16);
        assert_eq!(w.block_size, 4096);
        assert_eq!(w.command_count, 16);
        let r = bench_workload(AccessPattern::RandomRead, 8);
        assert_eq!(r.command_count, 8);
    }
}
