//! Shared helpers for the SSDExplorer benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated Criterion
//! bench target in `benches/`; the helpers here keep the workload sizing and
//! the steady-state adjustments consistent across them. The full-size
//! experiment runs (larger workloads, all configurations) live in the
//! `experiments` binary: `cargo run --release -p ssdx-bench --bin experiments`.

use ssdx_core::{Axis, CachePolicy, Explorer, SsdConfig};
use ssdx_hostif::{AccessPattern, Workload};

/// Number of 4 KB commands used by the bench-sized sweeps (the `experiments`
/// binary uses larger workloads for the recorded numbers).
pub const BENCH_COMMANDS: u64 = 8_192;

/// Shrinks the per-buffer write cache so that bench-sized workloads reach the
/// flash-limited steady state instead of being absorbed by the cache.
pub fn steady_state(mut cfg: SsdConfig) -> SsdConfig {
    cfg.dram_buffer_capacity = 128 * 1024;
    cfg
}

/// The canonical 4 KB sequential-write workload of the paper's sweeps.
pub fn sequential_write_workload(commands: u64) -> Workload {
    Workload::builder(AccessPattern::SequentialWrite)
        .command_count(commands)
        .build()
}

/// A 4 KB workload of the given pattern, sized for benching.
pub fn bench_workload(pattern: AccessPattern, commands: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(commands)
        .footprint_bytes(4 << 30)
        .build()
}

/// Measures the canonical speedup series — 1/2/4/8 threads over
/// [`speedup_explorer`] with one shared sequential baseline — asserting
/// byte-identity for every row and printing one summary line per row.
/// Shared by `experiments -- speedup` and the `fig7_parallel_speedup`
/// bench so the two recorded trajectories cannot silently diverge.
pub fn print_speedup_series(commands: u64) {
    let explorer = speedup_explorer();
    let workload = sequential_write_workload(commands);
    let rows = ssdx_core::measure_sweep_speedups(&explorer, &workload, &[1, 2, 4, 8])
        .expect("speedup sweep points are valid");
    for speedup in &rows {
        assert!(
            speedup.identical,
            "determinism violation: parallel sweep diverged at {} threads",
            speedup.threads
        );
        println!("{}", speedup.summary_line());
    }
}

/// The canonical 8-point sweep of the parallel-speedup measurements
/// (Fig. 7 of the repo, `experiments -- speedup`): channels × cache policy
/// × seed over a steady-state base platform, so the points differ in cost
/// and the executor's load balancing is actually exercised.
pub fn speedup_explorer() -> Explorer {
    let base = steady_state(
        SsdConfig::builder("speedup-base")
            .topology(4, 2, 2)
            .dram_buffers(4)
            .build()
            .expect("speedup base configuration is valid"),
    );
    Explorer::new(base)
        .over(Axis::over("channels", [4u32, 8], |cfg, &c| {
            cfg.channels = c;
            cfg.dram_buffers = c;
        }))
        .over(
            Axis::new("cache")
                .point("cache", |cfg| cfg.cache_policy = CachePolicy::WriteCache)
                .point("no cache", |cfg| cfg.cache_policy = CachePolicy::NoCache),
        )
        .over(Axis::over("seed", [11u64, 23], |cfg, &s| cfg.seed = s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_shrinks_the_cache() {
        let cfg = steady_state(SsdConfig::default());
        assert_eq!(cfg.dram_buffer_capacity, 128 * 1024);
    }

    #[test]
    fn speedup_explorer_expands_to_eight_points() {
        let jobs = speedup_explorer().jobs().expect("points validate");
        assert_eq!(jobs.len(), 8);
    }

    #[test]
    fn workload_helpers_use_4kb_blocks() {
        let w = sequential_write_workload(16);
        assert_eq!(w.block_size, 4096);
        assert_eq!(w.command_count, 16);
        let r = bench_workload(AccessPattern::RandomRead, 8);
        assert_eq!(r.command_count, 8);
    }
}
