//! Fig. 6 — simulation speed (KCPS) across the Table III configurations.
//!
//! Prints the KCPS table measured exactly as the paper defines it (simulated
//! controller-clock kilocycles per wall-clock second), then benchmarks the
//! raw simulation wall time of a small and a large configuration so
//! regressions in simulator performance are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdx_bench::{sequential_write_workload, steady_state};
use ssdx_core::configs::table3_configs;
use ssdx_core::{speed, Ssd, SsdConfig};
use std::hint::black_box;

fn print_series() {
    println!("\n=== Fig. 6: simulation speed (KCPS), Table III configurations ===");
    let configs: Vec<SsdConfig> = table3_configs().into_iter().map(steady_state).collect();
    let workload = sequential_write_workload(4_096);
    let points = speed::measure_kcps_sweep(&configs, &workload);
    println!(
        "{:<6} {:<34} {:>14} {:>10}",
        "config", "architecture", "KCPS", "MB/s"
    );
    for p in &points {
        println!(
            "{:<6} {:<34} {:>14.1} {:>10.1}",
            p.config_name, p.architecture, p.kcps, p.throughput_mbps
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig6_simulation_speed");
    group.sample_size(10);
    let workload = sequential_write_workload(2_048);
    for cfg in table3_configs().into_iter().map(steady_state) {
        if !matches!(cfg.name.as_str(), "C1" | "C4" | "C8") {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("simulate", &cfg.name), &cfg, |b, cfg| {
            let mut ssd = Ssd::new(cfg.clone());
            b.iter(|| black_box(ssd.simulate(&workload).elapsed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
