//! Fig. 4 — Sequential Write throughput across the Table II configurations
//! behind a PCIe Gen2 x8 + NVMe host interface.
//!
//! Prints the DDR+FLASH / SSD-cache / SSD-no-cache columns for C1–C10 and the
//! performance/cost Pareto front, then benchmarks representative
//! configurations as timing kernels. The study's configuration ×
//! cache-policy product fans out across all cores via the
//! `ParallelExecutor` (byte-identical to the sequential sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdx_bench::{sequential_write_workload, steady_state, BENCH_COMMANDS};
use ssdx_core::configs::table2_configs;
use ssdx_core::{explorer, CachePolicy, HostInterfaceConfig, Ssd, SsdConfig};
use std::hint::black_box;

fn print_series() {
    println!("\n=== Fig. 4: Sequential Write, PCIe Gen2 x8 + NVMe host interface ===");
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();
    let sweep = explorer::host_interface_study(
        HostInterfaceConfig::nvme_gen2_x8(),
        &configs,
        &sequential_write_workload(BENCH_COMMANDS),
    )
    .expect("table configurations validate");
    print!("{}", sweep.to_table());
    println!("Pareto front (throughput vs channels+buffers):");
    for p in sweep.pareto_front() {
        println!(
            "  {:<4} {:>7.1} MB/s ({} channels, {} buffers, {} dies)",
            p.config_name, p.ssd_cache_mbps, p.channels, p.dram_buffers, p.total_dies
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig4_pcie_sweep");
    group.sample_size(10);
    let workload = sequential_write_workload(2_048);
    for base in table2_configs().into_iter().map(steady_state) {
        if !matches!(base.name.as_str(), "C1" | "C6" | "C10") {
            continue;
        }
        let mut cfg = base;
        cfg.host_interface = HostInterfaceConfig::nvme_gen2_x8();
        cfg.cache_policy = CachePolicy::NoCache;
        group.bench_with_input(
            BenchmarkId::new("nvme_no_cache", &cfg.name),
            &cfg,
            |b, cfg| {
                let mut ssd = Ssd::new(cfg.clone());
                b.iter(|| black_box(ssd.simulate(&workload).throughput_mbps));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
