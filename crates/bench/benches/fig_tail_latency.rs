//! Tail-latency figure (repo extension) — steady-state percentiles per
//! command class across the generative workload suite.
//!
//! The paper's figures report mean throughput; fleets are judged on
//! p99/p99.9 under skewed, bursty traffic. This bench first prints the
//! percentile table of a bench-sized tail-latency study (deterministic —
//! the `tails` integration suite asserts two runs are byte-identical),
//! then criterion-benchmarks the study itself and the raw histogram
//! record/quantile path, so both the simulation cost and the metrics
//! overhead have a recorded trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdx_core::{metrics, LatencyHistogram, SsdConfig, SteadyStateCutoff};
use ssdx_sim::SimTime;
use std::hint::black_box;

const STUDY_COMMANDS: u64 = 2_048;

fn study() -> ssdx_core::TailStudy {
    let base = ssdx_bench::steady_state(
        SsdConfig::builder("tail-bench")
            .topology(4, 2, 2)
            .dram_buffers(4)
            .build()
            .expect("the bench configuration validates"),
    );
    metrics::tail_latency_study(
        &base,
        STUDY_COMMANDS,
        SteadyStateCutoff::Commands(STUDY_COMMANDS / 8),
    )
    .expect("the bench configuration validates")
}

fn print_table() {
    println!(
        "\n=== Tail latency: generative workloads, {STUDY_COMMANDS} commands each, \
         first {} trimmed as warmup ===",
        STUDY_COMMANDS / 8
    );
    println!("{}", study().to_table());
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig_tail_latency");
    group.sample_size(10);
    group.bench_function("study", |b| b.iter(|| black_box(study().sweep.len())));
    group.bench_function("histogram_record_quantile", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for i in 0..4_096u64 {
                h.record(SimTime::from_ns(black_box(i * 397 + 13)));
            }
            black_box(h.quantile(0.999))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
