//! Fig. 7 (repo extension) — parallel sweep speedup over the sequential
//! `Explorer`.
//!
//! The paper's Fig. 6 records how fast one simulation runs; this bench
//! records how fast a *sweep* of simulations runs when the `SweepJob`s fan
//! out across worker threads. It first prints a sequential-vs-parallel
//! wall-clock table for 1/2/4/8 threads on an 8-point sweep (verifying
//! byte-identity at each count), then criterion-benchmarks the sequential
//! and parallel paths so the speedup has a recorded trajectory. On a
//! ≥ 4-core machine the 4-thread row of the printed table is expected to
//! reach ≥ 2x; single-core CI boxes still verify identity, just without
//! the wall-clock win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdx_bench::{print_speedup_series, sequential_write_workload, speedup_explorer};
use ssdx_core::ParallelExecutor;
use std::hint::black_box;

const SWEEP_COMMANDS: u64 = 2_048;

fn print_series() {
    println!(
        "\n=== Fig. 7: parallel sweep speedup (8-point sweep, {SWEEP_COMMANDS} commands/point) ==="
    );
    print_speedup_series(SWEEP_COMMANDS);
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig7_parallel_speedup");
    group.sample_size(10);
    let explorer = speedup_explorer();
    let workload = sequential_write_workload(SWEEP_COMMANDS / 2);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(explorer.run(&workload).expect("valid sweep").len()))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                let executor = ParallelExecutor::with_threads(threads);
                b.iter(|| {
                    black_box(
                        executor
                            .run(&explorer, &workload)
                            .expect("valid sweep")
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
