//! Ablation benches for the design choices called out in DESIGN.md:
//! way-gang interconnection scheme, ECC scheme, compressor placement,
//! ONFI interface speed and host queue depth.
//!
//! Each group prints the measured throughput of the ablated variants before
//! benchmarking a representative kernel, so `cargo bench` doubles as a
//! sensitivity report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdx_bench::{bench_workload, sequential_write_workload};
use ssdx_channel::GangMode;
use ssdx_core::{CachePolicy, CompressorConfig, Ssd, SsdConfig, SsdConfigBuilder};
use ssdx_ecc::EccScheme;
use ssdx_hostif::AccessPattern;
use ssdx_nand::OnfiSpeed;
use std::hint::black_box;

fn base_config(name: &str) -> SsdConfigBuilder {
    SsdConfig::builder(name)
        .topology(8, 4, 2)
        .dram_buffers(8)
        .dram_buffer_capacity(128 * 1024)
}

fn print_throughput(label: &str, cfg: SsdConfig, pattern: AccessPattern) {
    let report = Ssd::new(cfg).simulate(&bench_workload(pattern, 4_096));
    println!("  {:<28} {:>8.1} MB/s", label, report.throughput_mbps);
}

fn print_series() {
    println!("\n=== Ablations (8-CHN/4-WAY/2-DIE unless stated) ===");

    println!("way gang interconnection (sequential write):");
    print_throughput(
        "shared-bus gang",
        base_config("gang-sb")
            .gang(GangMode::SharedBus)
            .build()
            .unwrap(),
        AccessPattern::SequentialWrite,
    );
    print_throughput(
        "shared-control gang",
        base_config("gang-sc")
            .gang(GangMode::SharedControl)
            .build()
            .unwrap(),
        AccessPattern::SequentialWrite,
    );

    println!("ECC scheme (sequential read):");
    for (label, ecc) in [
        ("no ECC", EccScheme::None),
        ("fixed BCH t=40", EccScheme::fixed_bch(40)),
        ("adaptive BCH t<=40", EccScheme::adaptive_bch(40)),
    ] {
        print_throughput(
            label,
            base_config("ecc").ecc(ecc).build().unwrap(),
            AccessPattern::SequentialRead,
        );
    }

    println!("compressor placement (sequential write):");
    for (label, comp) in [
        ("no compressor", CompressorConfig::None),
        ("host-side GZIP", CompressorConfig::HostSide),
        ("channel-side GZIP", CompressorConfig::ChannelSide),
    ] {
        print_throughput(
            label,
            base_config("comp").compressor(comp).build().unwrap(),
            AccessPattern::SequentialWrite,
        );
    }

    println!("ONFI interface speed (sequential write):");
    for (label, speed) in [
        ("legacy async 20 MB/s", OnfiSpeed::Sdr20),
        ("async 40 MB/s", OnfiSpeed::Sdr40),
        ("ONFI 2.x DDR-166", OnfiSpeed::Ddr166),
    ] {
        print_throughput(
            label,
            base_config("onfi").onfi_speed(speed).build().unwrap(),
            AccessPattern::SequentialWrite,
        );
    }

    println!("host queue depth, no-cache policy (sequential write):");
    for qd in [1u32, 8, 32] {
        print_throughput(
            &format!("SATA NCQ depth {qd}"),
            base_config("qd")
                .cache_policy(CachePolicy::NoCache)
                .queue_depth(qd)
                .build()
                .unwrap(),
            AccessPattern::SequentialWrite,
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let workload = sequential_write_workload(2_048);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (label, gang) in [
        ("shared_bus", GangMode::SharedBus),
        ("shared_control", GangMode::SharedControl),
    ] {
        let cfg = base_config("gang").gang(gang).build().unwrap();
        group.bench_with_input(BenchmarkId::new("gang", label), &cfg, |b, cfg| {
            let mut ssd = Ssd::new(cfg.clone());
            b.iter(|| black_box(ssd.simulate(&workload).throughput_mbps));
        });
    }
    for (label, ecc) in [
        ("none", EccScheme::None),
        ("fixed_40", EccScheme::fixed_bch(40)),
        ("adaptive_40", EccScheme::adaptive_bch(40)),
    ] {
        let cfg = base_config("ecc").ecc(ecc).build().unwrap();
        let read_workload = bench_workload(AccessPattern::SequentialRead, 1_024);
        group.bench_with_input(BenchmarkId::new("ecc", label), &cfg, |b, cfg| {
            let mut ssd = Ssd::new(cfg.clone());
            b.iter(|| black_box(ssd.simulate(&read_workload).throughput_mbps));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
