//! Fig. 5 — throughput over NAND flash wear-out, fixed vs adaptive BCH.
//!
//! Prints the read/write throughput of the 4-channel/2-way/4-die platform at
//! several points of its rated endurance for both ECC schemes, then
//! benchmarks the fresh and end-of-life read runs. Each study's endurance
//! axis fans out across all cores via the `ParallelExecutor`
//! (byte-identical to the sequential sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdx_bench::bench_workload;
use ssdx_core::configs::fig5_config;
use ssdx_core::{explorer, Ssd};
use ssdx_ecc::EccScheme;
use ssdx_hostif::AccessPattern;
use std::hint::black_box;

fn print_series() {
    println!("\n=== Fig. 5: throughput vs normalized rated endurance ===");
    let endurance: Vec<f64> = (0..=5).map(|i| i as f64 * 0.2).collect();
    let base = fig5_config(EccScheme::fixed_bch(40));
    let fixed = explorer::wearout_study(&base, EccScheme::fixed_bch(40), &endurance, 2_048)
        .expect("fig5 configuration validates");
    let adaptive = explorer::wearout_study(&base, EccScheme::adaptive_bch(40), &endurance, 2_048)
        .expect("fig5 configuration validates");
    println!(
        "{:>10} {:>12} {:>12} {:>13} {:>13}",
        "endurance", "fixed read", "adapt read", "fixed write", "adapt write"
    );
    for (f, a) in fixed.iter().zip(&adaptive) {
        println!(
            "{:>10.1} {:>7.1} MB/s {:>7.1} MB/s {:>8.1} MB/s {:>8.1} MB/s",
            f.normalized_endurance, f.read_mbps, a.read_mbps, f.write_mbps, a.write_mbps
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig5_wearout");
    group.sample_size(10);
    let workload = bench_workload(AccessPattern::SequentialRead, 1_024);
    for (label, ecc) in [
        ("fixed_bch_40", EccScheme::fixed_bch(40)),
        ("adaptive_bch_40", EccScheme::adaptive_bch(40)),
    ] {
        for (age_label, endurance) in [("fresh", 0.0), ("end_of_life", 1.0)] {
            let cfg = fig5_config(ecc.clone());
            group.bench_with_input(BenchmarkId::new(label, age_label), &cfg, |b, cfg| {
                let mut ssd = Ssd::new(cfg.clone());
                ssd.age_to_normalized(endurance);
                b.iter(|| black_box(ssd.simulate(&workload).throughput_mbps));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
