//! Fig. 3 — Sequential Write throughput across the Table II configurations
//! behind a SATA II host interface.
//!
//! Prints the DDR+FLASH / SSD-cache / SSD-no-cache columns for C1–C10, then
//! benchmarks representative configurations as timing kernels. The study's
//! configuration × cache-policy product fans out across all cores via the
//! `ParallelExecutor` (byte-identical to the sequential sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdx_bench::{sequential_write_workload, steady_state, BENCH_COMMANDS};
use ssdx_core::configs::table2_configs;
use ssdx_core::{explorer, HostInterfaceConfig, Ssd, SsdConfig};
use std::hint::black_box;

fn print_series() {
    println!("\n=== Fig. 3: Sequential Write, SATA II host interface ===");
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();
    let sweep = explorer::host_interface_study(
        HostInterfaceConfig::Sata2,
        &configs,
        &sequential_write_workload(BENCH_COMMANDS),
    )
    .expect("table configurations validate");
    print!("{}", sweep.to_table());
    if let Some(best) = sweep.optimal_design_point(0.95) {
        println!("optimal design point: {}\n", best.config_name);
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig3_sata_sweep");
    group.sample_size(10);
    let workload = sequential_write_workload(2_048);
    for cfg in table2_configs().into_iter().map(steady_state) {
        // C1, C6 and C10 span the resource range of Table II.
        if !matches!(cfg.name.as_str(), "C1" | "C6" | "C10") {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("sata2_cache", &cfg.name),
            &cfg,
            |b, cfg| {
                let mut ssd = Ssd::new(cfg.clone());
                b.iter(|| black_box(ssd.simulate(&workload).throughput_mbps));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
