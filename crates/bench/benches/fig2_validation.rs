//! Fig. 2 — validation against the OCZ Vertex 120 GB.
//!
//! Prints the four IOZone-style throughput figures (SW/SR/RW/RR, 4 KB) for
//! the OCZ-Vertex-like configuration, then benchmarks the sequential-write
//! run as the timing kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdx_bench::bench_workload;
use ssdx_core::configs::ocz_vertex_like;
use ssdx_core::Ssd;
use ssdx_hostif::AccessPattern;
use std::hint::black_box;

fn print_series() {
    println!("\n=== Fig. 2: OCZ-Vertex-like throughput (bench-sized workload) ===");
    let mut ssd = Ssd::new(ocz_vertex_like());
    for pattern in AccessPattern::all() {
        let report = ssd.simulate(&bench_workload(pattern, 16_384));
        println!(
            "{:<4} {:>8.1} MB/s",
            pattern.label(),
            report.throughput_mbps
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("fig2_validation");
    group.sample_size(10);
    group.bench_function("ocz_vertex_like/sequential_write_2048", |b| {
        let workload = bench_workload(AccessPattern::SequentialWrite, 2_048);
        let mut ssd = Ssd::new(ocz_vertex_like());
        b.iter(|| black_box(ssd.simulate(&workload).throughput_mbps));
    });
    group.bench_function("ocz_vertex_like/random_read_2048", |b| {
        let workload = bench_workload(AccessPattern::RandomRead, 2_048);
        let mut ssd = Ssd::new(ocz_vertex_like());
        b.iter(|| black_box(ssd.simulate(&workload).throughput_mbps));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
