//! Property-based tests of the DDR2 buffer model: bandwidth bounds, bus
//! serialisation, refresh bookkeeping and row-buffer behaviour.

use proptest::prelude::*;
use ssdx_dram::{AccessKind, Bank, BankState, DdrTimings, DramBuffer};
use ssdx_sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accesses_never_exceed_peak_bandwidth(
        accesses in prop::collection::vec((0u64..(1 << 24), 64u32..16_384), 1..80)
    ) {
        let timings = DdrTimings::ddr2_800();
        let mut buffer = DramBuffer::new(0, timings);
        let mut last_end = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for (addr, bytes) in accesses {
            let outcome = buffer.access(last_end, addr, bytes, AccessKind::Write);
            prop_assert!(outcome.end > outcome.start || bytes == 0);
            last_end = outcome.end;
            total_bytes += bytes as u64;
        }
        let implied_bw = total_bytes as f64 / last_end.as_secs_f64();
        prop_assert!(implied_bw <= timings.peak_bandwidth() as f64 * 1.001,
            "implied {implied_bw} exceeds peak {}", timings.peak_bandwidth());
    }

    #[test]
    fn burst_count_matches_transfer_size(bytes in 1u32..100_000) {
        let timings = DdrTimings::ddr2_800();
        let mut buffer = DramBuffer::new(0, timings);
        let outcome = buffer.access(SimTime::ZERO, 0, bytes, AccessKind::Read);
        prop_assert_eq!(outcome.bursts, bytes.div_ceil(timings.burst_bytes()).max(1));
        prop_assert!(outcome.row_hits <= outcome.bursts);
    }

    #[test]
    fn refresh_count_tracks_elapsed_time(gap_us in 1u64..2_000) {
        let timings = DdrTimings::ddr2_800();
        let mut buffer = DramBuffer::new(0, timings);
        buffer.access(SimTime::from_us(gap_us), 0, 64, AccessKind::Write);
        let expected = SimTime::from_us(gap_us).as_ns() / timings.t_refi_ns;
        let refreshes = buffer.stats().refreshes;
        prop_assert!(refreshes >= expected.saturating_sub(1));
        prop_assert!(refreshes <= expected + 1);
    }

    #[test]
    fn bank_ready_time_never_regresses(rows in prop::collection::vec(0u64..64, 1..60)) {
        let timings = DdrTimings::ddr2_800();
        let mut bank = Bank::new();
        let mut previous = SimTime::ZERO;
        for row in rows {
            let (ready, _) = bank.open_row(previous, row, &timings);
            prop_assert!(ready >= previous);
            previous = ready;
            prop_assert!(matches!(bank.state(), BankState::ActiveRow(r) if r == row));
        }
    }
}

#[test]
fn row_conflicts_cost_more_than_hits() {
    let timings = DdrTimings::ddr2_800();
    let mut hit_buffer = DramBuffer::new(0, timings);
    let mut conflict_buffer = DramBuffer::new(1, timings);

    // Same-row stream: mostly hits.
    let mut hit_end = SimTime::ZERO;
    for i in 0..64u64 {
        hit_end = hit_buffer.access(hit_end, i * 64, 64, AccessKind::Read).end;
    }
    // Row-thrashing stream: every access lands on a new row of the same bank.
    let mut conflict_end = SimTime::ZERO;
    for i in 0..64u64 {
        let addr = i * timings.row_bytes as u64 * timings.banks as u64;
        conflict_end = conflict_buffer
            .access(conflict_end, addr, 64, AccessKind::Read)
            .end;
    }
    assert!(
        conflict_end > hit_end + SimTime::from_ns(500),
        "row thrashing ({conflict_end}) must cost more than row hits ({hit_end})"
    );
}

#[test]
fn faster_grade_finishes_the_same_work_sooner() {
    let mut ddr800 = DramBuffer::new(0, DdrTimings::ddr2_800());
    let mut ddr533 = DramBuffer::new(0, DdrTimings::ddr2_533());
    let mut end800 = SimTime::ZERO;
    let mut end533 = SimTime::ZERO;
    for i in 0..256u64 {
        end800 = ddr800.access(end800, i * 4096, 4096, AccessKind::Write).end;
        end533 = ddr533.access(end533, i * 4096, 4096, AccessKind::Write).end;
    }
    assert!(end800 < end533);
}
