//! Per-bank row state machine.

use crate::timing::DdrTimings;
use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::SimTime;

/// State of one DRAM bank: either all rows are precharged, or one row is
/// open in the row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row is open.
    Idle,
    /// The given row is open in the row buffer.
    ActiveRow(u64),
}

/// Categories of row-buffer outcome for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle; the row had to be activated.
    Miss,
    /// Another row was open; precharge then activate.
    Conflict,
}

/// One DRAM bank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    ready_at: SimTime,
    hits: u64,
    misses: u64,
    conflicts: u64,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            ready_at: SimTime::ZERO,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Instant at which the bank can accept the next column command.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Row-buffer hit/miss/conflict counts.
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.conflicts)
    }

    /// Performs the row-management part of an access to `row`, starting no
    /// earlier than `at`. Returns the instant at which the column access
    /// (CAS) can be issued and the row outcome.
    pub fn open_row(
        &mut self,
        at: SimTime,
        row: u64,
        timings: &DdrTimings,
    ) -> (SimTime, RowOutcome) {
        self.open_row_with(at, row, timings.activate_time(), timings.precharge_time())
    }

    /// [`open_row`](Self::open_row) with the activate/precharge latencies
    /// supplied by the caller, so per-burst loops can use latencies cached
    /// once at controller construction instead of re-deriving them (a
    /// 128-bit division each) on every burst.
    #[inline]
    pub fn open_row_with(
        &mut self,
        at: SimTime,
        row: u64,
        activate: SimTime,
        precharge: SimTime,
    ) -> (SimTime, RowOutcome) {
        let start = at.max(self.ready_at);
        let (ready, outcome) = match self.state {
            BankState::ActiveRow(open) if open == row => {
                self.hits += 1;
                (start, RowOutcome::Hit)
            }
            BankState::Idle => {
                self.misses += 1;
                (start + activate, RowOutcome::Miss)
            }
            BankState::ActiveRow(_) => {
                self.conflicts += 1;
                (start + precharge + activate, RowOutcome::Conflict)
            }
        };
        self.state = BankState::ActiveRow(row);
        self.ready_at = ready;
        (ready, outcome)
    }

    /// Encodes the bank's mutable state, in stable field order: row-buffer
    /// state (tag byte `0` = idle, `1` = active row followed by the row
    /// number), ready instant, then the hit/miss/conflict counters.
    pub fn encode_state(&self, enc: &mut Encoder) {
        match self.state {
            BankState::Idle => enc.put_u8(0),
            BankState::ActiveRow(row) => {
                enc.put_u8(1);
                enc.put_u64(row);
            }
        }
        enc.put_time(self.ready_at);
        enc.put_u64(self.hits);
        enc.put_u64(self.misses);
        enc.put_u64(self.conflicts);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is truncated or the row-state
    /// tag is unknown.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.state = match dec.get_u8()? {
            0 => BankState::Idle,
            1 => BankState::ActiveRow(dec.get_u64()?),
            _ => return Err(dec.invalid("bank row-state tag")),
        };
        self.ready_at = dec.get_time()?;
        self.hits = dec.get_u64()?;
        self.misses = dec.get_u64()?;
        self.conflicts = dec.get_u64()?;
        Ok(())
    }

    /// Marks the bank busy until `until` (column access + data burst).
    pub fn occupy_until(&mut self, until: SimTime) {
        if until > self.ready_at {
            self.ready_at = until;
        }
    }

    /// Forces a precharge (used by refresh).
    pub fn precharge(&mut self, at: SimTime, timings: &DdrTimings) {
        let start = at.max(self.ready_at);
        self.state = BankState::Idle;
        self.ready_at = start + timings.precharge_time();
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_miss_then_hits() {
        let t = DdrTimings::ddr2_800();
        let mut b = Bank::new();
        let (ready, o) = b.open_row(SimTime::ZERO, 7, &t);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(ready, t.activate_time());
        let (ready2, o2) = b.open_row(ready, 7, &t);
        assert_eq!(o2, RowOutcome::Hit);
        assert_eq!(ready2, ready);
    }

    #[test]
    fn switching_rows_is_a_conflict() {
        let t = DdrTimings::ddr2_800();
        let mut b = Bank::new();
        let (r1, _) = b.open_row(SimTime::ZERO, 1, &t);
        let (r2, o) = b.open_row(r1, 2, &t);
        assert_eq!(o, RowOutcome::Conflict);
        assert_eq!(r2, r1 + t.precharge_time() + t.activate_time());
        assert_eq!(b.outcome_counts(), (0, 1, 1));
    }

    #[test]
    fn occupy_until_only_extends() {
        let mut b = Bank::new();
        b.occupy_until(SimTime::from_ns(100));
        b.occupy_until(SimTime::from_ns(50));
        assert_eq!(b.ready_at(), SimTime::from_ns(100));
    }

    #[test]
    fn precharge_closes_the_row() {
        let t = DdrTimings::ddr2_800();
        let mut b = Bank::new();
        b.open_row(SimTime::ZERO, 3, &t);
        b.precharge(SimTime::from_ns(100), &t);
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.ready_at(), SimTime::from_ns(100) + t.precharge_time());
    }
}
