//! DDR2 timing parameter sets.

use serde::{Deserialize, Serialize};
use ssdx_sim::{Frequency, SimTime};

/// A DDR2 SDRAM timing set, expressed in memory-clock cycles plus the clock
/// itself, following JEDEC notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrTimings {
    /// Memory clock (the data bus runs at twice this rate, DDR).
    pub clock: Frequency,
    /// CAS latency, cycles.
    pub cl: u32,
    /// RAS-to-CAS delay, cycles.
    pub t_rcd: u32,
    /// Row precharge time, cycles.
    pub t_rp: u32,
    /// Row active time, cycles.
    pub t_ras: u32,
    /// Refresh cycle time, cycles.
    pub t_rfc: u32,
    /// Average refresh interval, nanoseconds.
    pub t_refi_ns: u64,
    /// Burst length in beats (DDR2 supports 4 or 8).
    pub burst_length: u32,
    /// Data-bus width in bytes (x16 devices on a 64-bit DIMM → 8 bytes).
    pub bus_width_bytes: u32,
    /// Number of banks.
    pub banks: u32,
    /// Row size (page size) in bytes.
    pub row_bytes: u32,
}

impl DdrTimings {
    /// DDR2-800 (400 MHz clock), 5-5-5-18 timings — the kind of part found on
    /// SATA-era SSD controllers and the configuration used for the paper's
    /// experiments.
    pub fn ddr2_800() -> Self {
        DdrTimings {
            clock: Frequency::from_mhz(400),
            cl: 5,
            t_rcd: 5,
            t_rp: 5,
            t_ras: 18,
            t_rfc: 51,
            t_refi_ns: 7_800,
            burst_length: 8,
            bus_width_bytes: 8,
            banks: 8,
            row_bytes: 8192,
        }
    }

    /// DDR2-533 (266 MHz clock), 4-4-4-12: a slower, cheaper option useful
    /// for buffer-bandwidth ablations.
    pub fn ddr2_533() -> Self {
        DdrTimings {
            clock: Frequency::from_mhz(266),
            cl: 4,
            t_rcd: 4,
            t_rp: 4,
            t_ras: 12,
            t_rfc: 36,
            t_refi_ns: 7_800,
            burst_length: 8,
            bus_width_bytes: 8,
            banks: 8,
            row_bytes: 8192,
        }
    }

    /// Duration of `cycles` memory-clock cycles.
    pub fn cycles(&self, cycles: u32) -> SimTime {
        self.clock.cycles_to_time(cycles as u64)
    }

    /// Time to activate a closed row (tRCD).
    pub fn activate_time(&self) -> SimTime {
        self.cycles(self.t_rcd)
    }

    /// Time to precharge an open row (tRP).
    pub fn precharge_time(&self) -> SimTime {
        self.cycles(self.t_rp)
    }

    /// CAS latency as time.
    pub fn cas_time(&self) -> SimTime {
        self.cycles(self.cl)
    }

    /// Time to refresh (tRFC).
    pub fn refresh_time(&self) -> SimTime {
        self.cycles(self.t_rfc)
    }

    /// Average refresh interval (tREFI).
    pub fn refresh_interval(&self) -> SimTime {
        SimTime::from_ns(self.t_refi_ns)
    }

    /// Bytes moved by one burst.
    pub fn burst_bytes(&self) -> u32 {
        self.burst_length * self.bus_width_bytes
    }

    /// Time occupied on the data bus by one burst (DDR: two beats per clock).
    pub fn burst_time(&self) -> SimTime {
        self.clock.cycles_to_time(self.burst_length as u64) / 2
    }

    /// Peak data-bus bandwidth in bytes per second.
    pub fn peak_bandwidth(&self) -> u64 {
        // DDR: two transfers per clock.
        2 * self.clock.as_hz() * self.bus_width_bytes as u64
    }

    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), TimingsError> {
        if self.burst_length == 0
            || self.bus_width_bytes == 0
            || self.banks == 0
            || self.row_bytes == 0
        {
            return Err(TimingsError::ZeroDimension);
        }
        if self.cl == 0 || self.t_rcd == 0 || self.t_rp == 0 {
            return Err(TimingsError::ZeroLatency);
        }
        Ok(())
    }
}

impl Default for DdrTimings {
    fn default() -> Self {
        Self::ddr2_800()
    }
}

/// Error returned by [`DdrTimings::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingsError {
    /// A structural dimension (burst, width, banks, row) is zero.
    ZeroDimension,
    /// A core latency (CL, tRCD, tRP) is zero.
    ZeroLatency,
}

impl std::fmt::Display for TimingsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingsError::ZeroDimension => write!(f, "dram structural dimension is zero"),
            TimingsError::ZeroLatency => write!(f, "dram core latency is zero"),
        }
    }
}

impl std::error::Error for TimingsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr2_800_parameters() {
        let t = DdrTimings::ddr2_800();
        assert!(t.validate().is_ok());
        // 400 MHz clock -> 2.5 ns period; CL5 = 12.5 ns.
        assert_eq!(t.cas_time().as_ps(), 12_500);
        assert_eq!(t.burst_bytes(), 64);
        // Peak bandwidth 6.4 GB/s.
        assert_eq!(t.peak_bandwidth(), 6_400_000_000);
    }

    #[test]
    fn burst_time_is_half_burst_length_clocks() {
        let t = DdrTimings::ddr2_800();
        // 8 beats at 2 beats per 2.5 ns clock = 10 ns.
        assert_eq!(t.burst_time().as_ns(), 10);
    }

    #[test]
    fn slower_grade_has_lower_bandwidth() {
        assert!(DdrTimings::ddr2_533().peak_bandwidth() < DdrTimings::ddr2_800().peak_bandwidth());
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut t = DdrTimings::ddr2_800();
        t.banks = 0;
        assert_eq!(t.validate(), Err(TimingsError::ZeroDimension));
        let mut t = DdrTimings::ddr2_800();
        t.cl = 0;
        assert_eq!(t.validate(), Err(TimingsError::ZeroLatency));
    }

    #[test]
    fn refresh_interval_is_in_microsecond_range() {
        let t = DdrTimings::default();
        assert_eq!(t.refresh_interval().as_ns(), 7_800);
        assert!(t.refresh_time() > SimTime::ZERO);
    }
}
