//! The DRAM buffer front end used by the SSD data path.

use crate::bank::{Bank, RowOutcome};
use crate::timing::DdrTimings;
use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// Direction of a buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data written into the buffer (e.g. host data landing in the cache).
    Write,
    /// Data read out of the buffer (e.g. data leaving toward the NAND).
    Read,
}

/// Timing outcome of one buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// When the access started being serviced.
    pub start: SimTime,
    /// When the last burst of data completed.
    pub end: SimTime,
    /// Number of DRAM bursts the transfer required.
    pub bursts: u32,
    /// Row-buffer hits among those bursts.
    pub row_hits: u32,
}

/// Aggregate statistics for one DRAM buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses serviced.
    pub accesses: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total busy time on the data bus.
    pub bus_busy: SimTime,
    /// Number of refresh operations performed.
    pub refreshes: u64,
}

/// One DDR2 data buffer (one DRAM device/rank behind its own controller).
///
/// The paper upper-bounds the number of buffers by the number of channels
/// served by the disk controller; the SSD model instantiates as many
/// `DramBuffer`s as the configuration requests and stripes traffic across
/// them.
#[derive(Debug, Clone)]
pub struct DramBuffer {
    id: u32,
    timings: DdrTimings,
    banks: Vec<Bank>,
    data_bus_free: SimTime,
    next_refresh: SimTime,
    stats: DramStats,
}

impl DramBuffer {
    /// Creates an idle buffer with the given identifier and timing set.
    pub fn new(id: u32, timings: DdrTimings) -> Self {
        let banks = (0..timings.banks).map(|_| Bank::new()).collect();
        DramBuffer {
            id,
            timings,
            banks,
            data_bus_free: SimTime::ZERO,
            next_refresh: timings.refresh_interval(),
            stats: DramStats::default(),
        }
    }

    /// Buffer identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Timing set in use.
    pub fn timings(&self) -> &DdrTimings {
        &self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Earliest instant the data bus is free.
    pub fn bus_free_at(&self) -> SimTime {
        self.data_bus_free
    }

    fn map_address(&self, addr: u64, burst_index: u32) -> (usize, u64) {
        // Simple interleaved mapping: consecutive bursts rotate across banks,
        // rows advance every `row_bytes`.
        let burst_addr = addr + burst_index as u64 * self.timings.burst_bytes() as u64;
        let bank = (burst_addr / self.timings.burst_bytes() as u64) % self.timings.banks as u64;
        let row = burst_addr / self.timings.row_bytes as u64;
        (bank as usize, row)
    }

    fn refresh_if_due(&mut self, now: SimTime) {
        while now >= self.next_refresh {
            let at = self.next_refresh;
            for bank in &mut self.banks {
                bank.precharge(at, &self.timings);
                bank.occupy_until(at + self.timings.refresh_time());
            }
            self.data_bus_free = self.data_bus_free.max(at + self.timings.refresh_time());
            self.next_refresh += self.timings.refresh_interval();
            self.stats.refreshes += 1;
        }
    }

    /// Performs an access of `bytes` bytes starting at buffer address `addr`,
    /// beginning no earlier than `at`.
    ///
    /// The transfer is split into DRAM bursts; each burst pays the row
    /// activation cost its bank requires (hit/miss/conflict) plus CAS latency
    /// and bus occupancy. Refresh windows that became due before `at` stall
    /// the whole device.
    pub fn access(&mut self, at: SimTime, addr: u64, bytes: u32, _kind: AccessKind) -> AccessOutcome {
        self.refresh_if_due(at);
        let bursts = bytes.div_ceil(self.timings.burst_bytes()).max(1);
        let mut cursor = at;
        let mut first_start = None;
        let mut row_hits = 0;
        for i in 0..bursts {
            let (bank_idx, row) = self.map_address(addr, i);
            let (cas_ready, outcome) = self.banks[bank_idx].open_row(cursor, row, &self.timings);
            if outcome == RowOutcome::Hit {
                row_hits += 1;
            }
            let data_start = (cas_ready + self.timings.cas_time()).max(self.data_bus_free);
            let data_end = data_start + self.timings.burst_time();
            self.banks[bank_idx].occupy_until(data_end);
            self.data_bus_free = data_end;
            self.stats.bus_busy += self.timings.burst_time();
            if first_start.is_none() {
                first_start = Some(data_start);
            }
            cursor = data_end;
        }
        self.stats.accesses += 1;
        self.stats.bytes += bytes as u64;
        AccessOutcome {
            start: first_start.unwrap_or(at),
            end: cursor,
            bursts,
            row_hits,
        }
    }

    /// Effective bandwidth observed so far over `elapsed` simulated time, in
    /// bytes per second.
    pub fn effective_bandwidth(&self, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.stats.bytes as f64 / elapsed.as_secs_f64()
    }

    /// Resets dynamic state (row buffers, bus, statistics).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank::new();
        }
        self.data_bus_free = SimTime::ZERO;
        self.next_refresh = self.timings.refresh_interval();
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> DramBuffer {
        DramBuffer::new(0, DdrTimings::ddr2_800())
    }

    #[test]
    fn access_takes_longer_than_pure_burst_time() {
        let mut b = buf();
        let o = b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        // 4096 / 64 = 64 bursts, each 10 ns on the bus -> at least 640 ns.
        assert_eq!(o.bursts, 64);
        assert!(o.end >= SimTime::from_ns(640));
        // But well under 10 µs: the DRAM is not the bottleneck of the SSD.
        assert!(o.end < SimTime::from_us(10));
    }

    #[test]
    fn sequential_accesses_mostly_hit_the_row_buffer() {
        let mut b = buf();
        b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        let o2 = b.access(SimTime::from_us(10), 0, 4096, AccessKind::Read);
        assert!(o2.row_hits > o2.bursts / 2, "row hits = {}/{}", o2.row_hits, o2.bursts);
    }

    #[test]
    fn small_access_still_one_burst() {
        let mut b = buf();
        let o = b.access(SimTime::ZERO, 128, 16, AccessKind::Read);
        assert_eq!(o.bursts, 1);
    }

    #[test]
    fn refresh_happens_periodically() {
        let mut b = buf();
        b.access(SimTime::from_ms(1), 0, 64, AccessKind::Write);
        // 1 ms / 7.8 µs ≈ 128 refreshes due before the access.
        assert!(b.stats().refreshes >= 120, "refreshes = {}", b.stats().refreshes);
    }

    #[test]
    fn bus_is_shared_across_accesses() {
        let mut b = buf();
        let o1 = b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        let o2 = b.access(SimTime::ZERO, 1 << 20, 4096, AccessKind::Write);
        assert!(o2.start >= o1.end - SimTime::from_ns(10));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut b = buf();
        b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        assert_eq!(b.stats().accesses, 1);
        assert_eq!(b.stats().bytes, 4096);
        assert!(b.effective_bandwidth(SimTime::from_us(10)) > 0.0);
        b.reset();
        assert_eq!(b.stats().accesses, 0);
        assert_eq!(b.bus_free_at(), SimTime::ZERO);
    }

    #[test]
    fn effective_bandwidth_zero_horizon() {
        let b = buf();
        assert_eq!(b.effective_bandwidth(SimTime::ZERO), 0.0);
    }
}
