//! The DRAM buffer front end used by the SSD data path.

use crate::bank::{Bank, RowOutcome};
use crate::timing::DdrTimings;
use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::SimTime;

/// Direction of a buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data written into the buffer (e.g. host data landing in the cache).
    Write,
    /// Data read out of the buffer (e.g. data leaving toward the NAND).
    Read,
}

/// Timing outcome of one buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// When the access started being serviced.
    pub start: SimTime,
    /// When the last burst of data completed.
    pub end: SimTime,
    /// Number of DRAM bursts the transfer required.
    pub bursts: u32,
    /// Row-buffer hits among those bursts.
    pub row_hits: u32,
}

/// Aggregate statistics for one DRAM buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses serviced.
    pub accesses: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total busy time on the data bus.
    pub bus_busy: SimTime,
    /// Number of refresh operations performed.
    pub refreshes: u64,
}

/// One DDR2 data buffer (one DRAM device/rank behind its own controller).
///
/// The paper upper-bounds the number of buffers by the number of channels
/// served by the disk controller; the SSD model instantiates as many
/// `DramBuffer`s as the configuration requests and stripes traffic across
/// them.
///
/// The derived timing quantities (CAS/activate/precharge/burst times, the
/// refresh window and interval) are computed once at construction and cached
/// — every one of them costs a 128-bit division through
/// [`Frequency::cycles_to_time`](ssdx_sim::Frequency::cycles_to_time), and
/// the burst loop used to recompute them per 64-byte burst.
#[derive(Debug, Clone)]
pub struct DramBuffer {
    id: u32,
    timings: DdrTimings,
    banks: Vec<Bank>,
    data_bus_free: SimTime,
    next_refresh: SimTime,
    stats: DramStats,
    // Cached derived timings (pure functions of `timings`, which is only
    // exposed immutably).
    cas: SimTime,
    activate: SimTime,
    precharge: SimTime,
    burst: SimTime,
    refresh_window: SimTime,
    refresh_interval: SimTime,
}

impl DramBuffer {
    /// Creates an idle buffer with the given identifier and timing set.
    pub fn new(id: u32, timings: DdrTimings) -> Self {
        let banks = (0..timings.banks).map(|_| Bank::new()).collect();
        DramBuffer {
            id,
            banks,
            data_bus_free: SimTime::ZERO,
            next_refresh: timings.refresh_interval(),
            stats: DramStats::default(),
            cas: timings.cas_time(),
            activate: timings.activate_time(),
            precharge: timings.precharge_time(),
            burst: timings.burst_time(),
            refresh_window: timings.refresh_time(),
            refresh_interval: timings.refresh_interval(),
            timings,
        }
    }

    /// Buffer identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Timing set in use.
    pub fn timings(&self) -> &DdrTimings {
        &self.timings
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Earliest instant the data bus is free.
    pub fn bus_free_at(&self) -> SimTime {
        self.data_bus_free
    }

    fn map_address(&self, addr: u64, burst_index: u32) -> (usize, u64) {
        // Simple interleaved mapping: consecutive bursts rotate across banks,
        // rows advance every `row_bytes`.
        let burst_addr = addr + burst_index as u64 * self.timings.burst_bytes() as u64;
        let bank = (burst_addr / self.timings.burst_bytes() as u64) % self.timings.banks as u64;
        let row = burst_addr / self.timings.row_bytes as u64;
        (bank as usize, row)
    }

    fn refresh_if_due(&mut self, now: SimTime) {
        while now >= self.next_refresh {
            let at = self.next_refresh;
            // Catch-up collapse: when every bank is idle by `at` and one
            // refresh window fully fits inside the refresh interval, each
            // refresh leaves the device in a state (`Idle`,
            // `ready = at + tRFC`) that the next one completely supersedes —
            // so only the last due refresh's effect survives. Apply it
            // directly and account the skipped ones, instead of walking one
            // 7.8 µs interval at a time across what can be seconds of
            // simulated idle time (the former dominant cost of long runs).
            let windows_fit = self.refresh_window.max(self.precharge) <= self.refresh_interval;
            if windows_fit && self.banks.iter().all(|b| b.ready_at() <= at) {
                let skipped = (now - at).as_ps() / self.refresh_interval.as_ps();
                let last_at = at + self.refresh_interval * skipped;
                for bank in &mut self.banks {
                    bank.precharge(last_at, &self.timings);
                    bank.occupy_until(last_at + self.refresh_window);
                }
                self.data_bus_free = self.data_bus_free.max(last_at + self.refresh_window);
                self.next_refresh = last_at + self.refresh_interval;
                self.stats.refreshes += skipped + 1;
                return;
            }
            // Slow path: a bank is still busy past `at` (or the timing set
            // is degenerate), so refreshes interact and must be replayed one
            // by one until the device drains.
            for bank in &mut self.banks {
                bank.precharge(at, &self.timings);
                bank.occupy_until(at + self.refresh_window);
            }
            self.data_bus_free = self.data_bus_free.max(at + self.refresh_window);
            self.next_refresh += self.refresh_interval;
            self.stats.refreshes += 1;
        }
    }

    /// Performs an access of `bytes` bytes starting at buffer address `addr`,
    /// beginning no earlier than `at`.
    ///
    /// The transfer is split into DRAM bursts; each burst pays the row
    /// activation cost its bank requires (hit/miss/conflict) plus CAS latency
    /// and bus occupancy. Refresh windows that became due before `at` stall
    /// the whole device.
    pub fn access(
        &mut self,
        at: SimTime,
        addr: u64,
        bytes: u32,
        _kind: AccessKind,
    ) -> AccessOutcome {
        self.refresh_if_due(at);
        let burst_bytes = self.timings.burst_bytes() as u64;
        let banks = self.banks.len() as u64;
        let bursts = bytes.div_ceil(burst_bytes as u32).max(1);
        let mut cursor = at;
        let mut first_start = None;
        let mut row_hits = 0;
        // Incremental address mapping: consecutive bursts rotate across the
        // banks one step at a time and advance the row whenever the running
        // address crosses a row boundary, replacing the two 64-bit divisions
        // the closed-form `map_address` pays per burst (the mapping itself
        // is unchanged — `map_address` remains the reference definition).
        let mut bank_idx = ((addr / burst_bytes) % banks) as usize;
        let mut row = addr / self.timings.row_bytes as u64;
        let mut row_rem = addr % self.timings.row_bytes as u64;
        for i in 0..bursts {
            debug_assert_eq!((bank_idx, row), {
                let (b, r) = self.map_address(addr, i);
                (b, r)
            });
            let (cas_ready, outcome) =
                self.banks[bank_idx].open_row_with(cursor, row, self.activate, self.precharge);
            if outcome == RowOutcome::Hit {
                row_hits += 1;
            }
            let data_start = (cas_ready + self.cas).max(self.data_bus_free);
            let data_end = data_start + self.burst;
            self.banks[bank_idx].occupy_until(data_end);
            self.data_bus_free = data_end;
            if first_start.is_none() {
                first_start = Some(data_start);
            }
            cursor = data_end;
            // Advance the mapping to the next burst.
            bank_idx += 1;
            if bank_idx as u64 == banks {
                bank_idx = 0;
            }
            row_rem += burst_bytes;
            while row_rem >= self.timings.row_bytes as u64 {
                row_rem -= self.timings.row_bytes as u64;
                row += 1;
            }
        }
        self.stats.bus_busy += self.burst * bursts as u64;
        self.stats.accesses += 1;
        self.stats.bytes += bytes as u64;
        AccessOutcome {
            start: first_start.unwrap_or(at),
            end: cursor,
            bursts,
            row_hits,
        }
    }

    /// Effective bandwidth observed so far over `elapsed` simulated time, in
    /// bytes per second.
    pub fn effective_bandwidth(&self, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.stats.bytes as f64 / elapsed.as_secs_f64()
    }

    /// Encodes the buffer's mutable state, in stable field order: each bank
    /// (construction-fixed count, no length prefix), data-bus free instant,
    /// next refresh deadline, then the statistics (accesses, bytes, bus busy
    /// time, refreshes). The identifier, timing set, and the cached derived
    /// latencies are construction parameters, not snapshot state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        for bank in &self.banks {
            bank.encode_state(enc);
        }
        enc.put_time(self.data_bus_free);
        enc.put_time(self.next_refresh);
        enc.put_u64(self.stats.accesses);
        enc.put_u64(self.stats.bytes);
        enc.put_time(self.stats.bus_busy);
        enc.put_u64(self.stats.refreshes);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a buffer constructed with the same timing set.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        for bank in &mut self.banks {
            bank.decode_state(dec)?;
        }
        self.data_bus_free = dec.get_time()?;
        self.next_refresh = dec.get_time()?;
        self.stats.accesses = dec.get_u64()?;
        self.stats.bytes = dec.get_u64()?;
        self.stats.bus_busy = dec.get_time()?;
        self.stats.refreshes = dec.get_u64()?;
        Ok(())
    }

    /// Resets dynamic state (row buffers, bus, statistics).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank::new();
        }
        self.data_bus_free = SimTime::ZERO;
        self.next_refresh = self.timings.refresh_interval();
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> DramBuffer {
        DramBuffer::new(0, DdrTimings::ddr2_800())
    }

    #[test]
    fn access_takes_longer_than_pure_burst_time() {
        let mut b = buf();
        let o = b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        // 4096 / 64 = 64 bursts, each 10 ns on the bus -> at least 640 ns.
        assert_eq!(o.bursts, 64);
        assert!(o.end >= SimTime::from_ns(640));
        // But well under 10 µs: the DRAM is not the bottleneck of the SSD.
        assert!(o.end < SimTime::from_us(10));
    }

    #[test]
    fn sequential_accesses_mostly_hit_the_row_buffer() {
        let mut b = buf();
        b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        let o2 = b.access(SimTime::from_us(10), 0, 4096, AccessKind::Read);
        assert!(
            o2.row_hits > o2.bursts / 2,
            "row hits = {}/{}",
            o2.row_hits,
            o2.bursts
        );
    }

    #[test]
    fn small_access_still_one_burst() {
        let mut b = buf();
        let o = b.access(SimTime::ZERO, 128, 16, AccessKind::Read);
        assert_eq!(o.bursts, 1);
    }

    #[test]
    fn refresh_happens_periodically() {
        let mut b = buf();
        b.access(SimTime::from_ms(1), 0, 64, AccessKind::Write);
        // 1 ms / 7.8 µs ≈ 128 refreshes due before the access.
        assert!(
            b.stats().refreshes >= 120,
            "refreshes = {}",
            b.stats().refreshes
        );
    }

    #[test]
    fn bus_is_shared_across_accesses() {
        let mut b = buf();
        let o1 = b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        let o2 = b.access(SimTime::ZERO, 1 << 20, 4096, AccessKind::Write);
        assert!(o2.start >= o1.end - SimTime::from_ns(10));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut b = buf();
        b.access(SimTime::ZERO, 0, 4096, AccessKind::Write);
        assert_eq!(b.stats().accesses, 1);
        assert_eq!(b.stats().bytes, 4096);
        assert!(b.effective_bandwidth(SimTime::from_us(10)) > 0.0);
        b.reset();
        assert_eq!(b.stats().accesses, 0);
        assert_eq!(b.bus_free_at(), SimTime::ZERO);
    }

    #[test]
    fn effective_bandwidth_zero_horizon() {
        let b = buf();
        assert_eq!(b.effective_bandwidth(SimTime::ZERO), 0.0);
    }
}
