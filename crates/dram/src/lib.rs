//! DDR2 SDRAM data-buffer model.
//!
//! SSDExplorer models its data buffers with a cycle-accurate DRAM simulator
//! (a SystemC port of DRAMSim2) because realistic buffer behaviour — row
//! activation and precharge, CAS latency, periodic refresh — measurably
//! shifts the SSD-level performance picture. This crate provides the
//! equivalent model: a [`DdrTimings`] parameter set, a per-bank row state
//! machine ([`bank::Bank`]), and the [`DramBuffer`] front end the rest of the
//! platform talks to.
//!
//! # Example
//!
//! ```
//! use ssdx_dram::{DramBuffer, DdrTimings};
//! use ssdx_sim::SimTime;
//!
//! let mut buf = DramBuffer::new(0, DdrTimings::ddr2_800());
//! let write = buf.access(SimTime::ZERO, 0x0000, 4096, ssdx_dram::AccessKind::Write);
//! assert!(write.end > write.start);
//! ```

#![warn(rust_2018_idioms)]

pub mod bank;
pub mod buffer;
pub mod timing;

pub use bank::{Bank, BankState};
pub use buffer::{AccessKind, AccessOutcome, DramBuffer, DramStats};
pub use timing::DdrTimings;
