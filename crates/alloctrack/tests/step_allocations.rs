//! Pins the zero-allocation property of the simulation hot path: once a
//! platform is warm (its lazily populated per-die wear maps have seen their
//! working set), driving a `SimSession` command by command performs **zero
//! heap allocations per step** — in the WAF-abstracted mode, in the
//! page-mapped FTL mode (including garbage collection, which runs on the
//! FTL's reusable relocation buffer), and with a capacity-reserved probe
//! attached.
//!
//! This file is its own test binary so it can install a counting global
//! allocator without affecting any other suite.
//!
//! The counter is **per-thread**: the libtest harness thread lazily
//! allocates its channel-parking context the first time it blocks waiting
//! for the test to finish, and that can land inside a measurement window.
//! Only allocations made by the measuring thread are the hot path's.

use ssdx_core::{
    ClassHistograms, CompletionLog, FtlMode, LatencyHistogram, Ssd, SsdConfig, SteadyStateCutoff,
};
use ssdx_hostif::{AccessPattern, HostOp, Workload};
use ssdx_sim::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

// Const-initialized with no destructor, so reading it from inside the
// global allocator never recurses into the allocator or TLS teardown.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn workload(pattern: AccessPattern, commands: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(commands)
        .footprint_bytes(4 << 20)
        .build()
}

fn config(name: &str) -> ssdx_core::SsdConfigBuilder {
    SsdConfig::builder(name)
        .topology(4, 2, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(256 * 1024)
}

/// Runs `w` twice on `ssd` (the first run warms the lazily populated wear
/// maps) and returns the number of heap allocations performed by the second
/// run's `step` loop.
fn allocations_during_steps(ssd: &mut Ssd, w: &Workload) -> u64 {
    let warm = ssd.session(w).finish();
    assert!(warm.commands > 0);

    let mut session = ssd.session(w);
    let before = allocations();
    while session.step().is_some() {}
    let after = allocations();
    // `finish` after the measurement window (report construction owns
    // strings and is not part of the per-command hot path).
    let report = session.finish();
    assert_eq!(report.commands, w.command_count);
    after - before
}

#[test]
fn stepping_a_warm_session_never_allocates() {
    // WAF-abstracted mode, writes (DRAM back-pressure ledger + protocol
    // window active) and reads (ECC decode path active).
    for pattern in [
        AccessPattern::SequentialWrite,
        AccessPattern::RandomWrite,
        AccessPattern::SequentialRead,
    ] {
        let mut ssd = Ssd::new(config("waf-alloc").build().unwrap());
        let w = workload(pattern, 384);
        let allocs = allocations_during_steps(&mut ssd, &w);
        assert_eq!(
            allocs, 0,
            "{pattern:?}: step loop allocated {allocs} times on a warm platform"
        );
    }

    // Page-mapped FTL mode with enough random overwrites to trigger garbage
    // collection: relocations must run on the FTL's reusable buffer.
    let mut ssd = Ssd::new(
        config("pm-alloc")
            .ftl_mode(FtlMode::PageMapped)
            .over_provisioning(0.25)
            .build()
            .unwrap(),
    );
    let w = Workload::builder(AccessPattern::RandomWrite)
        .command_count(1_200)
        .footprint_bytes(2 << 20)
        .build();
    let allocs = allocations_during_steps(&mut ssd, &w);
    assert_eq!(
        allocs, 0,
        "page-mapped step loop allocated {allocs} times on a warm platform"
    );

    // The metrics histograms are inline arrays: constructing, recording,
    // merging and querying them never touches the heap — which is what
    // licenses the session to record per-class tail latencies on the hot
    // path.
    let before = allocations();
    {
        let mut h = LatencyHistogram::new();
        let mut other = LatencyHistogram::new();
        let mut classes = ClassHistograms::new();
        for i in 0..10_000u64 {
            h.record(SimTime::from_ns(i * 131 + 7));
            other.record(SimTime::from_us(i));
            classes.record(
                if i % 3 == 0 {
                    HostOp::Read
                } else {
                    HostOp::Write
                },
                SimTime::from_ns(i),
            );
        }
        h.merge(&other);
        assert!(h.quantile(0.999) >= h.quantile(0.5));
        assert!(classes.total().count() == 10_000);
        assert!(SteadyStateCutoff::Commands(5).admits(5, SimTime::ZERO));
    }
    assert_eq!(
        allocations() - before,
        0,
        "histogram construct/record/merge/quantile must never allocate"
    );

    // A capacity-reserved probe observes every record without allocating.
    let mut ssd = Ssd::new(config("probe-alloc").build().unwrap());
    let w = workload(AccessPattern::SequentialWrite, 256);
    let _ = ssd.session(&w).finish();
    let mut log = CompletionLog::with_capacity(256, 16);
    let mut session = ssd.session(&w);
    session.attach(&mut log);
    session.sample_every(64);
    let before = allocations();
    while session.step().is_some() {}
    let after = allocations();
    drop(session);
    assert_eq!(log.records().len(), 256);
    assert_eq!(log.snapshots().len(), 4);
    assert_eq!(
        after - before,
        0,
        "probed step loop allocated {} times",
        after - before
    );
}
