//! Pins the allocation behaviour of snapshot capture: serialising a
//! steady-state platform+session image ([`SimSession::capture`]) performs
//! a small, **bounded** number of heap allocations — the encoder's
//! amortised buffer growth plus two heap-canonicalisation scratch vectors
//! — independent of how many commands the session has executed. Capture is
//! what the warm-start sweep path runs once per group; it must never
//! become an allocation storm that scales with simulated history.
//!
//! This file is its own test binary so it can install a counting global
//! allocator without affecting any other suite (same pattern as
//! `step_allocations.rs`; the counter is per-thread for the same reason).

use ssdx_core::{FtlMode, Ssd, SsdConfig};
use ssdx_hostif::{AccessPattern, Workload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|n| n.set(n.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn workload(commands: u64) -> Workload {
    Workload::builder(AccessPattern::RandomWrite)
        .command_count(commands)
        .footprint_bytes(4 << 20)
        .build()
}

fn config(ftl: FtlMode) -> SsdConfig {
    SsdConfig::builder("snapcap")
        .topology(4, 2, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(256 * 1024)
        .ftl_mode(ftl)
        .build()
        .unwrap()
}

/// Runs `commands` commands to steady state and returns how many heap
/// allocations one `capture()` of the resulting image performs.
fn allocations_during_capture(ftl: FtlMode, commands: u64) -> u64 {
    let mut ssd = Ssd::new(config(ftl));
    let w = workload(commands);
    let mut session = ssd.session(&w);
    while session.step().is_some() {}
    let before = allocations();
    let image = session.capture();
    let after = allocations();
    assert!(!image.to_bytes().is_empty());
    after - before
}

/// Capture allocates a bounded handful of times — encoder doublings and
/// the two sort-scratch vectors — in both FTL modes, with a generous
/// ceiling that still catches any per-element or per-command allocation
/// creeping into the encode path.
#[test]
fn capturing_a_steady_state_image_is_allocation_bounded() {
    for ftl in [FtlMode::WafAbstraction, FtlMode::PageMapped] {
        let allocs = allocations_during_capture(ftl, 512);
        assert!(
            allocs <= 64,
            "capture performed {allocs} allocations in {ftl:?} mode — \
             the encode path must stay allocation-bounded"
        );
    }
}

/// The bound is genuinely independent of simulated history: capturing
/// after 8× the commands must not allocate more than a small constant
/// above the short run (encoder doublings may differ by a few steps when
/// state grows, e.g. the page-mapped mapping table's live entries).
#[test]
fn capture_allocations_do_not_scale_with_commands_executed() {
    let short = allocations_during_capture(FtlMode::WafAbstraction, 64);
    let long = allocations_during_capture(FtlMode::WafAbstraction, 512);
    assert!(
        long <= short + 8,
        "capture allocations scaled with run length: {short} after 64 \
         commands vs {long} after 512"
    );
}
