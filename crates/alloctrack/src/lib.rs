//! Test-only crate: its integration suite installs a counting global
//! allocator (see `tests/step_allocations.rs`) to pin the simulator's
//! zero-allocations-per-step property. Nothing here is part of the
//! platform's public API.
//!
//! This is the single workspace crate that allows `unsafe` (implementing
//! `std::alloc::GlobalAlloc` requires it); every production crate keeps the
//! workspace-wide `unsafe_code = "forbid"`.

#![warn(missing_docs)]
