//! Diagnostic types and rendering: rustc-style text and `--json` output.
//!
//! Rendering is pure string building (`fmt::Write` into a caller-owned
//! buffer, the same idiom as `Sweep::to_table`): the library never prints,
//! which keeps `ssdx-lint` clean under its own `no-print-in-lib` rule. The
//! JSON encoder is hand-rolled like `SpeedBaseline::to_json` — the vendored
//! serde is a marker crate.

use std::fmt::Write as _;

/// One reported finding, located and ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (registry rules or the suppression-audit meta names).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the match.
    pub line: usize,
    /// 1-based column (in characters) of the match.
    pub col: usize,
    /// Width of the match in characters (for the caret underline).
    pub width: usize,
    /// What went wrong, specific to this site.
    pub message: String,
    /// The full source line, for the snippet.
    pub snippet: String,
    /// What to do instead (the rule's help text), if any.
    pub help: Option<&'static str>,
}

impl Diagnostic {
    /// Render in rustc's error format:
    ///
    /// ```text
    /// error[no-wall-clock]: `Instant` violates: ...
    ///   --> crates/nand/src/die.rs:41:13
    ///    |
    /// 41 |     let t = Instant::now();
    ///    |             ^^^^^^^
    ///    = help: ...
    /// ```
    pub fn render(&self, out: &mut String) {
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(out, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "{pad}--> {}:{}:{}", self.path, self.line, self.col);
        let _ = writeln!(out, "{pad} |");
        let _ = writeln!(out, "{gutter} | {}", self.snippet.trim_end());
        let underline_pad: String = self
            .snippet
            .chars()
            .take(self.col.saturating_sub(1))
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        let carets = "^".repeat(self.width.max(1));
        let _ = writeln!(out, "{pad} | {underline_pad}{carets}");
        if let Some(help) = self.help {
            let _ = writeln!(out, "{pad} = help: {help}");
        }
    }

    fn to_json_object(&self, out: &mut String) {
        out.push('{');
        let _ = write!(out, "\"rule\":\"{}\",", escape_json(self.rule));
        let _ = write!(out, "\"path\":\"{}\",", escape_json(&self.path));
        let _ = write!(out, "\"line\":{},\"col\":{},", self.line, self.col);
        let _ = write!(out, "\"message\":\"{}\",", escape_json(&self.message));
        let _ = write!(
            out,
            "\"snippet\":\"{}\"",
            escape_json(self.snippet.trim_end())
        );
        out.push('}');
    }
}

/// Render a full report as human-readable text, with a trailing summary.
pub fn render_text(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        d.render(&mut out);
        out.push('\n');
    }
    if diags.is_empty() {
        let _ = writeln!(out, "ssdx-lint: clean ({files_scanned} files scanned)");
    } else {
        let _ = writeln!(
            out,
            "ssdx-lint: {} finding{} across {files_scanned} files scanned",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
        );
    }
    out
}

/// Render a full report as one JSON document (stable field order).
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":1,");
    let _ = write!(out, "\"files_scanned\":{files_scanned},");
    let _ = write!(out, "\"count\":{},", diags.len());
    out.push_str("\"findings\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        d.to_json_object(&mut out);
    }
    out.push_str("]}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-wall-clock",
            path: "crates/nand/src/die.rs".to_string(),
            line: 41,
            col: 13,
            width: 7,
            message: "`Instant` violates: reproducibility".to_string(),
            snippet: "    let t = Instant::now();".to_string(),
            help: Some("use SimTime"),
        }
    }

    #[test]
    fn renders_rustc_style() {
        let mut out = String::new();
        sample().render(&mut out);
        let expected = format!(
            "error[no-wall-clock]: `Instant` violates: reproducibility\n\
             {p}--> crates/nand/src/die.rs:41:13\n\
             {p} |\n\
             41 |     let t = Instant::now();\n\
             {p} | {pad}{carets}\n\
             {p} = help: use SimTime\n",
            p = "  ",
            pad = " ".repeat(12), // col 13 => 12 columns of padding
            carets = "^".repeat(7),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn json_is_escaped_and_countable() {
        let mut d = sample();
        d.message = "quote \" backslash \\ newline \n".to_string();
        let json = render_json(&[d], 93);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"files_scanned\":93"));
        assert!(!json.contains('\n'), "JSON stays on one line");
    }

    #[test]
    fn clean_report_says_clean() {
        let text = render_text(&[], 90);
        assert!(text.contains("clean (90 files scanned)"));
    }
}
