//! The `ssdx-lint` CLI.
//!
//! ```text
//! ssdx-lint [--workspace] [--json] [--list] [--update-api] [PATH ...]
//! ```
//!
//! With `--workspace` (or no arguments) the whole workspace is audited:
//! the per-file rules plus the cross-file analyses (crate layering and
//! public-API snapshots). Explicit paths lint individual files, with scope
//! matching driven by the workspace-relative form of each path.
//! `--update-api` regenerates the committed snapshots under
//! `crates/lint/api/` instead of linting. Exit codes: `0` clean, `1` at
//! least one finding, `2` usage or I/O error.
//!
//! Output goes through locked, buffered handles with `writeln!` rather than
//! the print macros — the linter's own `no-print-in-lib` rule covers this
//! file, and the CLI leads by example.

use std::env;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ssdx_lint::{
    lint_source, lint_workspace, registry, render_json, render_text, update_api_snapshots,
    ANALYSES, RULES,
};

struct Options {
    json: bool,
    list: bool,
    workspace: bool,
    update_api: bool,
    paths: Vec<String>,
}

const USAGE: &str = "\
usage: ssdx-lint [--workspace] [--json] [--list] [--update-api] [PATH ...]

  --workspace   audit every Rust source in the workspace (default when no
                paths are given), including the cross-file analyses
  --json        emit one machine-readable JSON document instead of text
  --list        print the rule and analysis registry (name + contract)
  --update-api  regenerate the public-API snapshots under crates/lint/api/
  -h, --help    show this help

exit codes: 0 clean, 1 findings reported, 2 usage or I/O error";

fn main() -> ExitCode {
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let stderr = io::stderr();
    let mut err = stderr.lock();

    let mut opts = Options {
        json: false,
        list: false,
        workspace: false,
        update_api: false,
        paths: Vec::new(),
    };
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list" => opts.list = true,
            "--workspace" => opts.workspace = true,
            "--update-api" => opts.update_api = true,
            "-h" | "--help" => {
                let _ = writeln!(out, "{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                let _ = writeln!(err, "ssdx-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => opts.paths.push(path.to_string()),
        }
    }

    if opts.list {
        for rule in RULES {
            let _ = writeln!(out, "{:<34} {}", rule.name, rule.contract);
        }
        for analysis in ANALYSES {
            let _ = writeln!(out, "{:<34} {}", analysis.name, analysis.contract);
        }
        return ExitCode::SUCCESS;
    }

    if opts.update_api {
        return match workspace_root().and_then(|root| update_api_snapshots(&root)) {
            Ok(written) => {
                for (name, changed) in written {
                    let _ = writeln!(
                        out,
                        "{name}.api: {}",
                        if changed { "updated" } else { "unchanged" }
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                let _ = writeln!(err, "ssdx-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let run = if opts.paths.is_empty() || opts.workspace {
        run_workspace(&opts)
    } else {
        run_paths(&opts)
    };
    match run {
        Ok((rendered, findings)) => {
            let _ = write!(out, "{rendered}");
            let _ = out.flush();
            if findings == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            let _ = writeln!(err, "ssdx-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Render a completed pass. Returns the output and the finding count.
fn render(
    opts: &Options,
    diags: Vec<ssdx_lint::Diagnostic>,
    files_scanned: usize,
) -> (String, usize) {
    let count = diags.len();
    let rendered = if opts.json {
        let mut s = render_json(&diags, files_scanned);
        s.push('\n');
        s
    } else {
        render_text(&diags, files_scanned)
    };
    (rendered, count)
}

fn run_workspace(opts: &Options) -> io::Result<(String, usize)> {
    let root = workspace_root()?;
    let report = lint_workspace(&root)?;
    Ok(render(opts, report.diagnostics, report.files_scanned))
}

fn run_paths(opts: &Options) -> io::Result<(String, usize)> {
    let root = workspace_root()?;
    let rules = registry();
    let mut diags = Vec::new();
    let mut scanned = 0usize;
    for given in &opts.paths {
        let path = Path::new(given);
        let abs = if path.is_absolute() {
            path.to_path_buf()
        } else {
            env::current_dir()?.join(path)
        };
        let text = fs::read_to_string(&abs)?;
        // Scope matching wants the workspace-relative path; fall back to
        // the path as given for files outside the workspace.
        let rel = abs
            .strip_prefix(&root)
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .unwrap_or_else(|_| given.replace('\\', "/"));
        diags.extend(lint_source(&rel, &text, &rules));
        scanned += 1;
    }
    Ok(render(opts, diags, scanned))
}

/// Find the workspace root: walk up from the current directory looking for
/// a `Cargo.toml` declaring `[workspace]`, falling back to the checkout
/// this binary was built from.
fn workspace_root() -> io::Result<PathBuf> {
    let mut dir = env::current_dir()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            break;
        }
    }
    // Built from `crates/lint`: the workspace root is two levels up.
    let fallback = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    fallback.canonicalize().map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("cannot locate the workspace root (run from a checkout): {e}"),
        )
    })
}
