//! `ssdx-lint`: the workspace invariant auditor.
//!
//! The platform's load-bearing contracts are promises no compiler checks:
//! byte-identical replay ([`Explorer`]'s determinism contract), hash-order
//! independence (`ssdx_sim::hash::FastHashMap` everywhere a map touches
//! simulation state), `unsafe` confined to `crates/alloctrack`, wall-clock
//! reads confined to the speed-measurement harness. This crate checks them
//! mechanically: a hand-rolled lexer masks strings and comments, a
//! declarative rule/scope table ([`rules::RULES`]) says which contract
//! covers which paths, and violations render as rustc-style diagnostics
//! (or `--json`).
//!
//! Run it two ways — both wired into CI so neither can rot:
//!
//! ```text
//! cargo run -p ssdx-lint -- --workspace     # the CLI
//! cargo test -q                             # tests/lint_clean.rs runs the same pass
//! ```
//!
//! Suppression is inline-only and audited (see [`engine`] for the model):
//!
//! ```text
//! // ssdx-lint::allow(rule-name): why this exact site is sound
//! ```
//!
//! [`Explorer`]: https://example.invalid/ssdexplorer-rs
//!
//! # Example
//!
//! ```
//! use ssdx_lint::{lint_source, registry};
//!
//! let rules = registry();
//! let offending = "use std::collections::HashMap;\n";
//! let diags = lint_source("crates/core/src/fresh.rs", offending, &rules);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "no-default-hasher");
//! assert_eq!((diags[0].line, diags[0].col), (1, 23)); // points at `HashMap`
//!
//! // The same text is fine where the scope table exempts it, and as
//! // prose: a comment or string naming a type is not a violation.
//! let prose = "// discussing std::collections::HashMap is fine\n";
//! assert!(lint_source("crates/core/src/fresh.rs", prose, &rules).is_empty());
//! ```

pub mod analysis;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use analysis::{
    analysis_spec, api_snapshots, update_api_snapshots, AnalysisSpec, AnalysisStats, ANALYSES,
    API_CRATES, API_DIR, LAYERS,
};
pub use diag::{render_json, render_text, Diagnostic};
pub use engine::{
    collect_sources, in_scope, lint_source, lint_workspace, SourceFile, SourceText,
    WorkspaceReport, SKIP_DIRS,
};
pub use parse::{parse_file, ParsedFile, PubItem, UsePath};
pub use rules::{meta, registry, spec, Finding, Rule, RuleSpec, HOT_PATHS, RULES};
