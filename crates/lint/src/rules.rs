//! The rule registry: what the workspace promises, written down as checks.
//!
//! Every rule here is grounded in a contract some other part of the
//! platform depends on — byte-identical replay (`Explorer`'s determinism
//! contract), hash-order independence (`ssdx_sim::hash::FastHashMap`),
//! `unsafe` confinement (`crates/alloctrack`), wall-clock confinement
//! (`crates/core/src/speed.rs`). The full mapping from contract to
//! enforcement lives in ARCHITECTURE.md ("Invariants & enforcement"), and
//! CI greps that every rule named in [`RULES`] appears there.
//!
//! # Extending the table
//!
//! Rules and their scopes are one declarative table, [`RULES`]: a new
//! invariant is a new [`RuleSpec`] entry (plus a fixture under
//! `tests/fixtures/` — the fixture suite fails if a registered rule has no
//! fixture proving it fires). Structural exemptions (whole paths a rule
//! does not cover) carry a written reason in the table; everything
//! finer-grained uses the audited inline form:
//!
//! ```text
//! // ssdx-lint::allow(rule-name): why this exact site is sound
//! ```

use crate::engine::SourceFile;

/// A diagnostic-to-be: a rule match at a byte offset, pre-suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Registry name of the rule that fired.
    pub rule: &'static str,
    /// Byte offset of the match in the file.
    pub offset: usize,
    /// Byte length of the matched text.
    pub len: usize,
    /// Human message describing this specific match.
    pub message: String,
}

/// A single invariant check over one source file.
///
/// Implementations see the whole [`SourceFile`] (text, lexed regions, code
/// mask) and report [`Finding`]s; scoping and suppression are handled by
/// the engine, so a rule only answers "does this pattern occur in code?".
pub trait Rule {
    /// Registry name (kebab-case; what `ssdx-lint::allow(...)` references).
    fn name(&self) -> &'static str;
    /// One-line statement of the contract the rule enforces.
    fn contract(&self) -> &'static str;
    /// What to do instead when the rule fires.
    fn help(&self) -> &'static str;
    /// Scan `file` and return every match, in offset order.
    fn check(&self, file: &SourceFile<'_>) -> Vec<Finding>;
}

/// Where a rule applies, expressed as workspace-relative path patterns.
///
/// Patterns are `/`-separated segment prefixes; a `*` segment matches
/// exactly one path segment (`crates/*/src` covers `crates/core/src/ssd.rs`
/// but not `crates/core/tests/x.rs`). A file is in scope iff it matches an
/// `include` pattern and no `exempt` pattern. Exemptions are structural and
/// carry their justification here, in the table, where review sees them.
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Registry name (kebab-case; what `ssdx-lint::allow(...)` references).
    pub name: &'static str,
    /// One-line statement of the contract the rule enforces.
    pub contract: &'static str,
    /// What to do instead when the rule fires.
    pub help: &'static str,
    /// Literal token patterns matched word-boundary-exactly in code regions.
    pub patterns: &'static [&'static str],
    /// Path patterns the rule covers.
    pub include: &'static [&'static str],
    /// `(path pattern, why that path is exempt)`.
    pub exempt: &'static [(&'static str, &'static str)],
    /// Skip matches inside `#[cfg(test)]` items (per [`crate::parse`]):
    /// for rules whose contract binds production code only.
    pub skip_test_code: bool,
}

/// Every Rust source the walker visits (workspace-relative roots).
const EVERYWHERE: &[&str] = &["crates", "src", "tests", "examples"];
/// Library sources only: crate `src/` trees plus the root facade.
const LIB_SOURCES: &[&str] = &["crates/*/src", "src"];

/// The declarative rule + scope table. One entry per shipped rule.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "no-default-hasher",
        contract: "hash-order independence: simulation state never lives in an entropy-seeded map",
        help: "use ssdx_sim::hash::FastHashMap (keyed lookups and order-independent folds only) \
               or a BTreeMap/BTreeSet where iteration order is observable",
        patterns: &["HashMap", "HashSet"],
        include: EVERYWHERE,
        exempt: &[(
            "crates/ftl/tests/oracle",
            "the pre-rewrite FTL kept verbatim as the state-identity oracle; editing it would \
             void its 'preserved unmodified' guarantee",
        )],
        skip_test_code: false,
    },
    RuleSpec {
        name: "no-wall-clock",
        contract: "reproducibility: simulation code never observes host time",
        help: "simulated time comes from ssdx_sim::SimTime; wall-clock reads belong in \
               crates/core/src/speed.rs or the bench crate",
        patterns: &["Instant", "SystemTime"],
        include: EVERYWHERE,
        exempt: &[
            (
                "crates/core/src/speed.rs",
                "the speed-measurement harness exists to read the wall clock",
            ),
            (
                "crates/bench",
                "benches and the experiments binary time real executions by design",
            ),
            (
                "crates/server/src/load.rs",
                "the load generator measures client-observed service latency, which is \
                 wall-clock by definition; simulation results stay SimTime-pure",
            ),
        ],
        skip_test_code: false,
    },
    RuleSpec {
        name: "unsafe-outside-alloctrack",
        contract: "memory safety: `unsafe` is confined to the counting-allocator harness",
        help: "the workspace forbids unsafe_code; a crate that truly needs it extends this \
               scope table in a reviewed PR instead of re-enabling the lint locally",
        patterns: &["unsafe", "unsafe_code"],
        include: EVERYWHERE,
        exempt: &[(
            "crates/alloctrack",
            "implementing GlobalAlloc requires unsafe; this is the audited exception the rule \
             exists to protect",
        )],
        skip_test_code: false,
    },
    RuleSpec {
        name: "no-thread-spawn-outside-parallel",
        contract: "determinism under concurrency: all threading flows through ParallelExecutor",
        help: "use ssdx_core::parallel::ParallelExecutor (deterministic per-job seeding, \
               ordered collection) instead of ambient threads",
        patterns: &[
            "std::thread",
            "thread::spawn",
            "thread::scope",
            "thread::Builder",
            "available_parallelism",
            "rayon",
        ],
        include: EVERYWHERE,
        exempt: &[
            (
                "crates/core/src/parallel.rs",
                "the executor itself is the one owner of OS threads",
            ),
            (
                "crates/server",
                "service I/O concurrency (acceptor, connection readers/writers, worker \
                 pool, load generator) is not simulation work; determinism is preserved \
                 per session, not per thread schedule",
            ),
        ],
        skip_test_code: false,
    },
    RuleSpec {
        name: "no-ambient-randomness",
        contract: "byte-identical replay: every random draw comes from a seeded SimRng",
        help: "thread a SimRng (or a value derived from the config seed) into the call site; \
               ambient entropy cannot be replayed",
        patterns: &[
            "RandomState",
            "DefaultHasher",
            "thread_rng",
            "from_entropy",
            "getrandom",
            "OsRng",
        ],
        include: EVERYWHERE,
        exempt: &[],
        skip_test_code: false,
    },
    RuleSpec {
        name: "no-print-in-lib",
        contract: "library crates stay silent: human-facing output belongs to binaries, \
                   examples, and tests",
        help: "return data and let the caller render it; the experiments binary, examples/, \
               tests/, and benches may print",
        patterns: &["println!", "print!", "eprintln!", "eprint!", "dbg!"],
        include: LIB_SOURCES,
        exempt: &[
            (
                "crates/bench/src",
                "the experiments binary and its helpers are the workspace's CLI surface",
            ),
            (
                "crates/server/src/bin",
                "the server/client/loadgen binaries are CLI surface; the server library \
                 itself logs only through an injected writer handle and stays exempt-free",
            ),
        ],
        skip_test_code: false,
    },
    RuleSpec {
        name: "no-panic-in-hot-path",
        contract: "hot paths never panic: the scheduler, mapping, session step loop, and \
                   command paths degrade through Result, not process death",
        help: "return a Result (the *_try twin pattern), use let-else/match on the Option, \
               or justify the invariant with an audited \
               `ssdx-lint::allow(no-panic-in-hot-path): <why>`",
        patterns: &["unwrap", "expect", "panic!", "unreachable!", "todo!"],
        include: HOT_PATHS,
        exempt: &[],
        skip_test_code: true,
    },
];

/// The designated hot-path modules: code on the per-event / per-command
/// simulation path, where a panic kills a multi-hour sweep. The list is
/// deliberately file-precise — widening it is a reviewed table change.
pub const HOT_PATHS: &[&str] = &[
    "crates/sim/src/scheduler.rs",
    "crates/ftl/src/mapping.rs",
    "crates/core/src/session.rs",
    "crates/channel/src/controller.rs",
    "crates/nand/src/die.rs",
    "crates/nand/src/onfi.rs",
];

/// Names of the suppression-audit diagnostics the engine itself emits.
/// These are not pattern rules but appear in diagnostics and fixtures the
/// same way, and ARCHITECTURE.md documents them alongside [`RULES`].
pub mod meta {
    /// An `ssdx-lint::allow(...)` with no `: reason` — suppressing without
    /// saying why is itself a finding, and the allow does not suppress.
    pub const BARE_SUPPRESSION: &str = "bare-suppression";
    /// An allow naming a rule the registry does not know.
    pub const UNKNOWN_RULE: &str = "unknown-rule-in-allow";
    /// A well-formed allow that suppressed nothing — stale, so flagged.
    pub const UNUSED_SUPPRESSION: &str = "unused-suppression";
}

/// Look up a rule's spec (scope + metadata) by name.
pub fn spec(name: &str) -> Option<&'static RuleSpec> {
    RULES.iter().find(|s| s.name == name)
}

/// Build the default registry: one [`PatternRule`] per [`RULES`] entry.
pub fn registry() -> Vec<Box<dyn Rule>> {
    RULES
        .iter()
        .map(|spec| Box::new(PatternRule { spec }) as Box<dyn Rule>)
        .collect()
}

/// A rule that flags literal token patterns appearing in code regions.
///
/// Matches are word-boundary exact: `HashMap` does not fire inside
/// `FastHashMap`, `unsafe` does not fire inside `unsafe_code` (which has
/// its own pattern). Matches inside strings, chars, and comments never
/// fire — that is the lexer's guarantee.
pub struct PatternRule {
    spec: &'static RuleSpec,
}

impl Rule for PatternRule {
    fn name(&self) -> &'static str {
        self.spec.name
    }

    fn contract(&self) -> &'static str {
        self.spec.contract
    }

    fn help(&self) -> &'static str {
        self.spec.help
    }

    fn check(&self, file: &SourceFile<'_>) -> Vec<Finding> {
        // Test-code exemption is opt-in per rule and span-precise: the
        // item parser reports each `#[cfg(test)]` item's byte range.
        let test_spans = if self.spec.skip_test_code {
            crate::parse::test_spans(file.text())
        } else {
            Vec::new()
        };
        let in_test = |offset: usize| test_spans.iter().any(|&(s, e)| s <= offset && offset < e);
        let mut findings = Vec::new();
        for pattern in self.spec.patterns {
            for offset in find_word_matches(file.text(), pattern) {
                if file.range_is_code(offset, offset + pattern.len()) && !in_test(offset) {
                    findings.push(Finding {
                        rule: self.spec.name,
                        offset,
                        len: pattern.len(),
                        message: format!("`{pattern}` violates: {}", self.spec.contract),
                    });
                }
            }
        }
        findings.sort_by_key(|f| f.offset);
        findings
    }
}

/// All word-boundary occurrences of `pattern` in `text` (byte offsets).
fn find_word_matches(text: &str, pattern: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(pattern) {
        let start = from + pos;
        let end = start + pattern.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_table() {
        let rules = registry();
        assert_eq!(rules.len(), RULES.len());
        assert!(rules.len() >= 6, "the contract set must not shrink");
        let mut names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len(), "rule names must be unique");
    }

    #[test]
    fn specs_are_well_formed() {
        for spec in RULES {
            assert!(!spec.patterns.is_empty(), "{}: no patterns", spec.name);
            assert!(!spec.include.is_empty(), "{}: no scope", spec.name);
            assert!(!spec.contract.is_empty() && !spec.help.is_empty());
            assert!(
                spec.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{}: rule names are kebab-case",
                spec.name
            );
            for (_, why) in spec.exempt {
                assert!(!why.is_empty(), "{}: exemptions carry a reason", spec.name);
            }
        }
    }

    #[test]
    fn word_boundaries_are_respected() {
        let hay = "FastHashMap HashMapX a_HashMap HashMap x HashMap";
        let hits = find_word_matches(hay, "HashMap");
        // Only the two standalone occurrences.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|&p| {
            let s = &hay[p..p + "HashMap".len()];
            s == "HashMap"
        }));
    }
}
