//! The lint driver: scoping, suppression auditing, and the workspace walk.
//!
//! # Suppression model
//!
//! Suppression is inline-only and audited. The single accepted form is a
//! comment:
//!
//! ```text
//! // ssdx-lint::allow(rule-name): why this exact site is sound
//! ```
//!
//! An allow binds to its own line when it trails code. When it stands
//! alone (only whitespace before the `//`), it covers the first following
//! line that is not blank or comment-only, so a justification may wrap
//! over several comment lines. Three audit diagnostics keep the mechanism
//! honest:
//!
//! - [`meta::BARE_SUPPRESSION`]: the `: reason` is missing or empty. A bare
//!   allow reports *and does not suppress* — the underlying finding still
//!   fires.
//! - [`meta::UNKNOWN_RULE`]: the named rule is not in the registry (likely
//!   a typo silently suppressing nothing).
//! - [`meta::UNUSED_SUPPRESSION`]: a well-formed allow that matched no
//!   finding — stale after a refactor, so it must be removed.
//!
//! Determinism: the walker visits files in sorted path order and every
//! diagnostic list is sorted by `(path, line, col, rule)`, so two runs over
//! the same tree emit byte-identical reports — the linter holds itself to
//! the contract it enforces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::lexer::{self, Region};
use crate::rules::{self, meta, Rule};

/// Directories (workspace-relative) the walker never descends into, with
/// the reason each is excluded from the audit.
pub const SKIP_DIRS: &[(&str, &str)] = &[
    (
        "crates/lint/tests/fixtures",
        "the ui-test corpus: files here violate rules on purpose",
    ),
    (
        "vendor",
        "vendored third-party stand-ins are not ours to audit",
    ),
    ("target", "build output"),
];

/// A lexed source file ready for rules to scan.
pub struct SourceFile<'a> {
    rel_path: &'a str,
    text: &'a str,
    regions: Vec<Region>,
    code: Vec<bool>,
    line_starts: Vec<usize>,
}

impl<'a> SourceFile<'a> {
    /// Lex `text` (a file at workspace-relative `rel_path`).
    pub fn parse(rel_path: &'a str, text: &'a str) -> Self {
        let regions = lexer::lex(text);
        let code = lexer::code_mask(text, &regions);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel_path,
            text,
            regions,
            code,
            line_starts,
        }
    }

    /// The raw source text.
    pub fn text(&self) -> &str {
        self.text
    }

    /// Workspace-relative path used for scope matching and diagnostics.
    pub fn rel_path(&self) -> &str {
        self.rel_path
    }

    /// The lexed regions, tiling the file.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// True iff every byte of `[start, end)` is code (outside literals and
    /// comments).
    pub fn range_is_code(&self, start: usize, end: usize) -> bool {
        self.code[start..end].iter().all(|&c| c)
    }

    /// 1-based `(line, col)` of a byte offset; columns count characters.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = self.text[self.line_starts[line_idx]..offset]
            .chars()
            .count()
            + 1;
        (line_idx + 1, col)
    }

    /// The full text of a 1-based line, without its newline.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&next| next);
        self.text[start..end].trim_end_matches(['\n', '\r'])
    }
}

/// One parsed `ssdx-lint::allow(...)` directive.
#[derive(Debug)]
struct Allow {
    /// Byte offset of the directive (for locating audit diagnostics).
    offset: usize,
    /// The rule name inside the parentheses.
    rule: String,
    /// Whether a non-empty `: reason` follows.
    has_reason: bool,
    /// The line this allow covers: its own line when it trails code, or —
    /// for a standalone allow, whose justification may wrap over several
    /// comment lines — the first following line that is not blank or
    /// comment-only.
    covers: usize,
    /// Set when the allow suppresses at least one finding.
    used: bool,
}

const ALLOW_MARKER: &str = "ssdx-lint::allow(";

/// Scan comment regions for allow directives.
fn parse_allows(file: &SourceFile<'_>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for region in file.regions() {
        // Directives live in ordinary comments only: doc comments are
        // prose, where the allow form may legitimately appear as an
        // *example* of the syntax (this crate's own docs do exactly that)
        // without being a directive.
        if !matches!(
            region.kind,
            lexer::RegionKind::LineComment | lexer::RegionKind::BlockComment
        ) {
            continue;
        }
        let comment = &file.text()[region.start..region.end];
        let mut from = 0usize;
        while let Some(pos) = comment[from..].find(ALLOW_MARKER) {
            let marker_at = from + pos;
            let args_at = marker_at + ALLOW_MARKER.len();
            let rest = &comment[args_at..];
            let Some(close) = rest.find(')') else {
                from = args_at;
                continue;
            };
            let rule = rest[..close].trim().to_string();
            // Mandatory form after the parens: `: <non-empty reason>`,
            // read to the end of the line (or comment).
            let after = &rest[close + 1..];
            let line_end = after.find('\n').unwrap_or(after.len());
            let tail = after[..line_end].trim_start();
            let has_reason = tail
                .strip_prefix(':')
                .map(|r| !r.trim().trim_end_matches("*/").trim().is_empty())
                .unwrap_or(false);
            let offset = region.start + marker_at;
            let (line, _) = file.line_col(offset);
            // Standalone = nothing but whitespace and the `//` opener
            // before the marker on its line (line-comment form only).
            let line_prefix = &file.text()[file_line_start(file, line)..offset];
            let standalone = line_prefix
                .trim_start()
                .trim_start_matches('/')
                .trim()
                .is_empty();
            let covers = if standalone {
                next_code_line(file, line)
            } else {
                line
            };
            allows.push(Allow {
                offset,
                rule,
                has_reason,
                covers,
                used: false,
            });
            from = args_at + close;
        }
    }
    allows
}

fn file_line_start(file: &SourceFile<'_>, line: usize) -> usize {
    file.line_starts[line - 1]
}

/// First line after `line` that is not blank or comment-only — what a
/// standalone allow (possibly with a multi-line justification) covers.
fn next_code_line(file: &SourceFile<'_>, line: usize) -> usize {
    let last = file.line_starts.len();
    let mut candidate = line + 1;
    while candidate <= last {
        let text = file.line_text(candidate).trim_start();
        if !text.is_empty() && !text.starts_with("//") {
            return candidate;
        }
        candidate += 1;
    }
    // Nothing follows: keep the allow bound to its own line; the
    // unused-suppression audit will flag it.
    line
}

/// Does `rel_path` match `pattern` (segment-prefix, `*` = one segment)?
fn path_matches(pattern: &str, rel_path: &str) -> bool {
    let mut path_segs = rel_path.split('/');
    for pat_seg in pattern.split('/') {
        match path_segs.next() {
            Some(seg) if pat_seg == "*" || pat_seg == seg => {}
            _ => return false,
        }
    }
    true
}

/// Is `rule` in scope for `rel_path`, per the declarative table?
pub fn in_scope(rule: &str, rel_path: &str) -> bool {
    let Some(spec) = rules::spec(rule) else {
        return false;
    };
    spec.include.iter().any(|p| path_matches(p, rel_path))
        && !spec.exempt.iter().any(|(p, _)| path_matches(p, rel_path))
}

/// Lint a single in-memory source against `rules_set`.
///
/// `rel_path` is workspace-relative and drives scope matching, so callers
/// can probe "what would the linter say about this file at this path"
/// without touching the filesystem — which is how the fixtures and the
/// fresh-violation tier-1 test work.
pub fn lint_source(rel_path: &str, text: &str, rules_set: &[Box<dyn Rule>]) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, text);
    let mut allows = parse_allows(&file);
    let known_rule = |name: &str| rules_set.iter().any(|r| r.name() == name);
    let mut diags = Vec::new();

    for rule in rules_set {
        if !in_scope(rule.name(), rel_path) {
            continue;
        }
        for finding in rule.check(&file) {
            let (line, col) = file.line_col(finding.offset);
            let suppressed = allows.iter_mut().any(|a| {
                let applies = a.has_reason
                    && known_rule(&a.rule)
                    && a.rule == finding.rule
                    && a.covers == line;
                if applies {
                    a.used = true;
                }
                applies
            });
            if suppressed {
                continue;
            }
            diags.push(Diagnostic {
                rule: finding.rule,
                path: rel_path.to_string(),
                line,
                col,
                width: text[finding.offset..finding.offset + finding.len]
                    .chars()
                    .count(),
                message: finding.message,
                snippet: file.line_text(line).to_string(),
                help: Some(rule.help()),
            });
        }
    }

    for allow in &allows {
        let (line, col) = file.line_col(allow.offset);
        let snippet = file.line_text(line).to_string();
        if !known_rule(&allow.rule) {
            diags.push(Diagnostic {
                rule: meta::UNKNOWN_RULE,
                path: rel_path.to_string(),
                line,
                col,
                width: ALLOW_MARKER.chars().count() + allow.rule.chars().count() + 1,
                message: format!(
                    "allow names `{}`, which is not a registered rule",
                    allow.rule
                ),
                snippet,
                help: Some("run `ssdx-lint --list` for the registry"),
            });
        } else if !allow.has_reason {
            diags.push(Diagnostic {
                rule: meta::BARE_SUPPRESSION,
                path: rel_path.to_string(),
                line,
                col,
                width: ALLOW_MARKER.chars().count() + allow.rule.chars().count() + 1,
                message: format!(
                    "suppression of `{}` without a reason; a bare allow does not suppress",
                    allow.rule
                ),
                snippet,
                help: Some("write `// ssdx-lint::allow(rule): <why this site is sound>`"),
            });
        } else if !allow.used {
            diags.push(Diagnostic {
                rule: meta::UNUSED_SUPPRESSION,
                path: rel_path.to_string(),
                line,
                col,
                width: ALLOW_MARKER.chars().count() + allow.rule.chars().count() + 1,
                message: format!(
                    "allow for `{}` suppressed nothing here — remove the stale directive",
                    allow.rule
                ),
                snippet,
                help: Some("stale allows hide the next real violation at this site"),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

/// The result of a full workspace pass.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Every diagnostic, sorted by `(path, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files the walker actually lexed.
    pub files_scanned: usize,
    /// Crates whose manifest the layering analysis parsed.
    pub layer_crates_checked: usize,
    /// Crates whose public surface the api-drift analysis compared.
    pub api_crates_checked: usize,
}

/// One collected source file, workspace-relative path plus contents —
/// what the per-file rules and the cross-file analyses both consume.
#[derive(Debug, Clone)]
pub struct SourceText {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The file's full text.
    pub text: String,
}

/// Read every Rust source the audit covers, in sorted path order.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceText>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs_files(root, &root.join(top), &mut files)?;
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        out.push(SourceText {
            rel: rel.to_string_lossy().replace('\\', "/"),
            text,
        });
    }
    Ok(out)
}

/// Lint every Rust source under `root` (a workspace checkout): the
/// per-file rules first, then the cross-file analyses
/// ([`crate::analysis`]) over the same collected sources.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let rules_set = rules::registry();
    let files = collect_sources(root)?;

    let mut diagnostics = Vec::new();
    for file in &files {
        diagnostics.extend(lint_source(&file.rel, &file.text, &rules_set));
    }
    let (analysis_diags, stats) = crate::analysis::run(root, &files)?;
    diagnostics.extend(analysis_diags);
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(WorkspaceReport {
        diagnostics,
        files_scanned: files.len(),
        layer_crates_checked: stats.layer_crates_checked,
        api_crates_checked: stats.api_crates_checked,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let rel = dir.strip_prefix(root).unwrap_or(dir);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if SKIP_DIRS
        .iter()
        .any(|(skip, _)| path_matches(skip, &rel_str))
    {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(root, &entry, out)?;
        } else if entry.extension().is_some_and(|ext| ext == "rs") {
            out.push(entry.strip_prefix(root).unwrap_or(&entry).to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::registry;

    fn diags(path: &str, text: &str) -> Vec<Diagnostic> {
        lint_source(path, text, &registry())
    }

    #[test]
    fn scope_matching_segments_and_wildcards() {
        assert!(path_matches("crates/*/src", "crates/core/src/ssd.rs"));
        assert!(!path_matches("crates/*/src", "crates/core/tests/x.rs"));
        assert!(path_matches("crates/bench", "crates/bench/src/lib.rs"));
        assert!(path_matches(
            "crates/core/src/speed.rs",
            "crates/core/src/speed.rs"
        ));
        assert!(!path_matches("crates/core/src/speed.rs", "crates/core/src"));
        assert!(!path_matches("src", "crates/core/src/lib.rs"));
    }

    #[test]
    fn finding_located_with_line_and_col() {
        let src = "fn f() {\n    let m = std::collections::Hash_Map_o();\n}\n"
            .replace("Hash_Map_o", "HashMap::new");
        let d = diags("crates/core/src/x.rs", &src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-default-hasher");
        assert_eq!(d[0].line, 2);
        assert!(d[0].snippet.contains("collections"));
    }

    #[test]
    fn exempt_paths_do_not_fire() {
        let src = "use std::time::In_stant;\n".replace("In_stant", "Instant");
        assert!(diags("crates/core/src/speed.rs", &src).is_empty());
        assert_eq!(diags("crates/core/src/session.rs", &src).len(), 1);
    }

    #[test]
    fn trailing_and_standalone_allows_suppress() {
        let rule_hit = "std::collections::Hash_Map".replace("_M", "M");
        let trailing =
            format!("use {rule_hit}; // ssdx-lint::allow(no-default-hasher): test shim over std\n");
        assert!(diags("crates/core/src/x.rs", &trailing).is_empty());

        let standalone = format!(
            "// ssdx-lint::allow(no-default-hasher): test shim over std\nuse {rule_hit};\n"
        );
        assert!(diags("crates/core/src/x.rs", &standalone).is_empty());
    }

    #[test]
    fn bare_allow_reports_and_does_not_suppress() {
        let rule_hit = "std::collections::Hash_Map".replace("_M", "M");
        let src = format!("use {rule_hit}; // ssdx-lint::allow(no-default-hasher)\n");
        let d = diags("crates/core/src/x.rs", &src);
        let rules_hit: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules_hit.contains(&"no-default-hasher"));
        assert!(rules_hit.contains(&meta::BARE_SUPPRESSION));
    }

    #[test]
    fn unknown_and_unused_allows_are_audited() {
        let unknown = "fn f() {} // ssdx-lint::allow(no-such-rule): typo'd\n";
        let d = diags("crates/core/src/x.rs", unknown);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, meta::UNKNOWN_RULE);

        let unused = "fn f() {} // ssdx-lint::allow(no-wall-clock): nothing here\n";
        let d = diags("crates/core/src/x.rs", unused);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, meta::UNUSED_SUPPRESSION);
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_fire() {
        let src = "\
// a comment naming std::collections::Hash_Map is prose
fn f() -> &'static str {
    \"std::time::In_stant and thread::spawn as data\"
}
";
        // The underscore split keeps this test file itself clean; the
        // probe text under test has the real tokens.
        let probe = src
            .replace("Hash_Map", "HashMap")
            .replace("In_stant", "Instant");
        assert!(diags("crates/core/src/x.rs", &probe).is_empty());
    }
}
