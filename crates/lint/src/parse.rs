//! A lightweight item/`use` parser built on the region lexer.
//!
//! The cross-file analyses ([`crate::analysis`]) need three structural
//! facts no token-level pattern can deliver: which crates a source file
//! references (`use ssdx_*` trees and inline `ssdx_*::` paths), what a
//! crate's public API surface is (every `pub` item, including methods in
//! inherent `impl` blocks, with signatures normalized to one line), and
//! which byte ranges are `#[cfg(test)]` code (so the hot-path panic audit
//! exempts tests). This module extracts exactly those facts and nothing
//! more.
//!
//! It is *not* a Rust parser. It walks the token stream the lexer's code
//! regions induce — strings and comments are already masked, so brace
//! matching is reliable — and recognises item shapes (`fn`, `struct`,
//! `enum`, `trait`, `impl`, `type`, `const`, `static`, `mod`, `use`,
//! `extern crate`, `macro_rules!`) structurally. Anything it does not
//! recognise it skips one token at a time, which is what makes it total:
//! like the lexer it never panics and accepts arbitrary (even invalid)
//! input, a property pinned by `tests/parse_props.rs`.
//!
//! Known simplifications, chosen deliberately and documented here:
//!
//! - Visibility is `pub`-exact: `pub(crate)`, `pub(super)` and `pub(in …)`
//!   items are treated as private (they are not API surface).
//! - Module structure is per-file: an item's path is its file's module
//!   path plus any in-file `mod` nesting. A `pub` item inside a private
//!   in-file module is excluded; cross-file re-export chains are not
//!   resolved (the `pub use` entries themselves are part of the surface,
//!   so drift is still visible).
//! - Braces inside const-generic argument positions (`Foo<{ N + 1 }>`)
//!   would be mistaken for a body start. The workspace has none; the
//!   parser stays total either way.

use crate::lexer::{self, RegionKind};

/// One extracted public item, signature normalized to one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// In-file module path (`""` at the file root, `a::b` inside nested
    /// `pub mod a { pub mod b { … } }`).
    pub module_path: String,
    /// Rendered surface entry, e.g. `fn quantile(&self, q: f64) -> u64`
    /// or `impl Scheduler<T> :: fn pop(&mut self) -> Option<Event<T>>`.
    pub entry: String,
    /// Byte offset of the item in the source (diagnostics anchor).
    pub offset: usize,
}

/// One leaf of a `use` tree, e.g. `ssdx_sim::hash::FastHashMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// The full path with aliases stripped (`a::b::c`, `a::b::*`).
    pub path: String,
    /// The path as written, including any `as alias` rename.
    pub display: String,
    /// Byte offset of the `use` keyword.
    pub offset: usize,
    /// Whether the declaration was `pub use` (a re-export).
    pub is_pub: bool,
}

/// Everything the parser extracts from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Public items reachable through `pub` in-file modules, in source
    /// order, excluding `#[cfg(test)]` code.
    pub pub_items: Vec<PubItem>,
    /// Every `use` declaration leaf (any visibility), in source order.
    pub uses: Vec<UsePath>,
    /// Byte spans of `#[cfg(test)]`-gated items (attribute through body).
    pub test_spans: Vec<(usize, usize)>,
    /// Each `ssdx_*` identifier referenced from code, with the byte offset
    /// of its first occurrence (deduplicated, sorted by name).
    pub crate_refs: Vec<(String, usize)>,
}

impl ParsedFile {
    /// True iff `offset` falls inside a `#[cfg(test)]` item span.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| s <= offset && offset < e)
    }
}

/// Parse `text` (one Rust source file). Total: never panics.
pub fn parse_file(text: &str) -> ParsedFile {
    let regions = lexer::lex(text);
    // Signatures keep string literals (`extern "C"`) but blank comments.
    let mut keep = vec![true; text.len()];
    let mut code = vec![false; text.len()];
    for r in &regions {
        if r.kind.is_comment() {
            for k in &mut keep[r.start..r.end] {
                *k = false;
            }
        }
        if r.kind == RegionKind::Code {
            for c in &mut code[r.start..r.end] {
                *c = true;
            }
        }
    }
    let toks = tokenize(text, &code);
    let mut out = ParsedFile::default();
    for t in &toks {
        if t.kind == TokKind::Ident {
            let word = &text[t.start..t.end];
            if word.starts_with("ssdx_") && !out.crate_refs.iter().any(|(n, _)| n == word) {
                out.crate_refs.push((word.to_string(), t.start));
            }
        }
    }
    out.crate_refs.sort();
    let mut p = Parser {
        text,
        keep: &keep,
        toks: &toks,
        out,
    };
    let mut path = Vec::new();
    p.items(0, &mut path, true, false);
    p.out
}

/// The `#[cfg(test)]` spans of `text` (for rules exempting test code).
pub fn test_spans(text: &str) -> Vec<(usize, usize)> {
    parse_file(text).test_spans
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokKind {
    Ident,
    Punct(u8),
}

#[derive(Debug, Clone, Copy)]
struct Tok {
    start: usize,
    end: usize,
    kind: TokKind,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Split the code regions of `text` into identifier and punctuation tokens.
fn tokenize(text: &str, code: &[bool]) -> Vec<Tok> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !code[i] || bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let b = bytes[i];
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && code[i] && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Tok {
                start,
                end: i,
                kind: TokKind::Ident,
            });
        } else {
            // One punctuation char; consume a whole UTF-8 char so token
            // boundaries stay char boundaries.
            let len = utf8_len(b).min(bytes.len() - i);
            toks.push(Tok {
                start: i,
                end: i + len,
                kind: TokKind::Punct(b),
            });
            i += len;
        }
    }
    toks
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

struct Parser<'a> {
    text: &'a str,
    keep: &'a [bool],
    toks: &'a [Tok],
    out: ParsedFile,
}

impl Parser<'_> {
    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn is_punct(&self, i: usize, b: u8) -> bool {
        self.kind(i) == Some(TokKind::Punct(b))
    }

    fn word(&self, i: usize) -> &str {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => &self.text[t.start..t.end],
            _ => "",
        }
    }

    fn offset(&self, i: usize) -> usize {
        self.toks.get(i).map_or(self.text.len(), |t| t.start)
    }

    /// Byte offset just past token `i - 1` (the end of what was consumed).
    fn end_offset(&self, i: usize) -> usize {
        if i == 0 {
            return 0;
        }
        self.toks.get(i - 1).map_or(self.text.len(), |t| t.end)
    }

    /// Normalize the source slice `[start, end)` to one line: comments
    /// blanked, whitespace runs collapsed to single spaces, trimmed.
    fn normalize(&self, start: usize, end: usize) -> String {
        let end = end.min(self.text.len()).max(start);
        let mut bytes = Vec::with_capacity(end - start);
        for (i, &b) in self.text.as_bytes()[start..end].iter().enumerate() {
            bytes.push(if self.keep[start + i] { b } else { b' ' });
        }
        let joined = String::from_utf8_lossy(&bytes).to_string();
        let mut out = String::with_capacity(joined.len());
        let mut pending_space = false;
        for c in joined.chars() {
            if c.is_whitespace() {
                pending_space = !out.is_empty();
            } else {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(c);
            }
        }
        out
    }

    /// Skip a balanced `open`…`close` group starting at the `open` token
    /// at `i`. Returns the index just past the matching close (or EOF).
    fn skip_balanced(&self, i: usize, open: u8, close: u8) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while let Some(kind) = self.kind(j) {
            match kind {
                TokKind::Punct(b) if b == open => depth += 1,
                TokKind::Punct(b) if b == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Scan an attribute whose `[` sits at `i`; returns the index past the
    /// closing `]` plus whether it is `#[cfg(test)]` or `#[macro_export]`.
    fn scan_attr(&self, i: usize) -> (usize, bool, bool) {
        let end = self.skip_balanced(i, b'[', b']');
        // Token shapes: `[ cfg ( test ) ]` / `[ macro_export ]`.
        let inner: Vec<&str> = (i + 1..end.saturating_sub(1))
            .map(|j| match self.kind(j) {
                Some(TokKind::Ident) => self.word(j),
                Some(TokKind::Punct(b'(')) => "(",
                Some(TokKind::Punct(b')')) => ")",
                _ => "?",
            })
            .collect();
        let cfg_test = inner == ["cfg", "(", "test", ")"];
        let macro_export = inner == ["macro_export"];
        (end, cfg_test, macro_export)
    }

    /// Find the body `{` or terminating `;` of a signature starting at
    /// token `i`, honouring `()`/`[]` nesting and `<>` generics (with
    /// `->` arrows excluded from angle tracking). Returns the token index
    /// of that delimiter (or EOF).
    fn signature_end(&self, i: usize) -> usize {
        let mut j = i;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        while let Some(kind) = self.kind(j) {
            match kind {
                TokKind::Punct(b'(') => paren += 1,
                TokKind::Punct(b')') => paren -= 1,
                TokKind::Punct(b'[') => bracket += 1,
                TokKind::Punct(b']') => bracket -= 1,
                TokKind::Punct(b'<') => angle += 1,
                TokKind::Punct(b'>') => {
                    // `->` is an arrow, not a generic close.
                    let arrow = j > 0 && self.is_punct(j - 1, b'-');
                    if !arrow {
                        angle -= 1;
                    }
                }
                TokKind::Punct(b'{') | TokKind::Punct(b';')
                    if paren <= 0 && bracket <= 0 && angle <= 0 =>
                {
                    return j;
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Scan forward from token `i` to the `;` terminating an expression
    /// (const/static initializers), honouring brace/paren/bracket nesting.
    fn expression_semi(&self, i: usize) -> usize {
        let mut j = i;
        let mut depth = 0i32;
        while let Some(kind) = self.kind(j) {
            match kind {
                TokKind::Punct(b'{') | TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b'}') | TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b';') if depth <= 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        j
    }

    fn push_item(&mut self, path: &[String], entry: String, offset: usize) {
        self.out.pub_items.push(PubItem {
            module_path: path.join("::"),
            entry,
            offset,
        });
    }

    /// Parse items until a closing `}` (consumed) or EOF. `public` says
    /// whether every enclosing in-file module is `pub`; `in_test` whether
    /// an enclosing item is `#[cfg(test)]`-gated.
    fn items(
        &mut self,
        mut i: usize,
        path: &mut Vec<String>,
        public: bool,
        in_test: bool,
    ) -> usize {
        while i < self.toks.len() {
            if self.is_punct(i, b'}') {
                return i + 1;
            }
            let item_start = self.offset(i);
            // --- attributes -------------------------------------------
            let mut cfg_test = false;
            let mut macro_export = false;
            while self.is_punct(i, b'#') {
                let mut j = i + 1;
                if self.is_punct(j, b'!') {
                    j += 1;
                }
                if self.is_punct(j, b'[') {
                    let (end, ct, me) = self.scan_attr(j);
                    cfg_test |= ct;
                    macro_export |= me;
                    i = end;
                } else {
                    i = j;
                }
            }
            // --- visibility -------------------------------------------
            let mut is_pub = false;
            if self.word(i) == "pub" {
                is_pub = true;
                i += 1;
                if self.is_punct(i, b'(') {
                    is_pub = false; // pub(crate)/pub(super)/pub(in …)
                    i = self.skip_balanced(i, b'(', b')');
                }
            }
            let visible = is_pub && public && !in_test && !cfg_test;
            let sig_from = self.offset(i);
            // --- modifiers --------------------------------------------
            loop {
                match self.word(i) {
                    "const" if self.word(i + 1) == "fn" => i += 1,
                    "unsafe" if matches!(self.word(i + 1), "fn" | "impl" | "trait" | "extern") => {
                        i += 1
                    }
                    "async" => i += 1,
                    "extern"
                        if !matches!(self.word(i + 1), "crate") && self.word(i + 1) == "fn" =>
                    {
                        i += 1
                    }
                    _ => break,
                }
            }
            let before = i;
            i = self.item(
                i,
                path,
                public,
                in_test,
                ItemCtx {
                    visible,
                    cfg_test,
                    macro_export,
                    sig_from,
                },
            );
            if cfg_test {
                self.out.test_spans.push((item_start, self.end_offset(i)));
            }
            if i == before {
                i += 1; // unrecognised token: stay total, keep moving
            }
        }
        i
    }

    /// Parse one item whose keyword sits at `i`. Returns the index past
    /// the item, or `i` unchanged when nothing was recognised.
    fn item(
        &mut self,
        i: usize,
        path: &mut Vec<String>,
        public: bool,
        in_test: bool,
        ctx: ItemCtx,
    ) -> usize {
        match self.word(i) {
            "use" => self.use_decl(i, ctx),
            "mod" => self.mod_decl(i, path, public, in_test, ctx),
            "fn" => self.fn_decl(i, path, ctx, ""),
            "struct" => self.struct_decl(i, path, ctx),
            "enum" => self.enum_decl(i, path, ctx),
            "trait" => self.trait_decl(i, path, ctx),
            "impl" => self.impl_decl(i, path, public, in_test, ctx),
            "type" => {
                let semi = self.expression_semi(i);
                if ctx.visible {
                    let entry =
                        self.normalize(ctx.sig_from, self.end_offset(semi).saturating_sub(1));
                    self.push_item(path, entry, ctx.sig_from);
                }
                semi
            }
            "const" | "static" => self.const_decl(i, path, ctx, ""),
            "macro_rules" => {
                // macro_rules ! name { … }
                let name = self.word(i + 2).to_string();
                let mut j = i + 3;
                while j < self.toks.len()
                    && !matches!(self.kind(j), Some(TokKind::Punct(b'{' | b'(' | b'[')))
                {
                    j += 1;
                }
                let end = match self.kind(j) {
                    Some(TokKind::Punct(b'{')) => self.skip_balanced(j, b'{', b'}'),
                    Some(TokKind::Punct(b'(')) => self.skip_balanced(j, b'(', b')') + 1,
                    Some(TokKind::Punct(b'[')) => self.skip_balanced(j, b'[', b']') + 1,
                    _ => j,
                };
                if ctx.macro_export && !in_test && !ctx.cfg_test {
                    self.push_item(path, format!("macro {name}!"), ctx.sig_from);
                }
                end
            }
            "extern" if self.word(i + 1) == "crate" => {
                let name = self.word(i + 2).to_string();
                if !name.is_empty() {
                    self.out.uses.push(UsePath {
                        path: name.clone(),
                        display: format!("extern crate {name}"),
                        offset: ctx.sig_from,
                        is_pub: ctx.visible,
                    });
                }
                self.expression_semi(i)
            }
            "extern" => {
                // `extern { … }` foreign module: skip the block.
                let sig = self.signature_end(i);
                if self.is_punct(sig, b'{') {
                    self.skip_balanced(sig, b'{', b'}')
                } else {
                    sig + 1
                }
            }
            _ => {
                if self.is_punct(i, b'{') {
                    self.skip_balanced(i, b'{', b'}')
                } else {
                    i // unrecognised: caller advances
                }
            }
        }
    }

    fn use_decl(&mut self, i: usize, ctx: ItemCtx) -> usize {
        let mut leaves = Vec::new();
        let end = self.use_tree(i + 1, "", &mut leaves);
        for (p, display) in leaves {
            if ctx.visible {
                self.out.pub_items.push(PubItem {
                    module_path: String::new(),
                    entry: format!("use {display}"),
                    offset: ctx.sig_from,
                });
            }
            self.out.uses.push(UsePath {
                path: p,
                display,
                offset: ctx.sig_from,
                is_pub: ctx.visible,
            });
        }
        // `use` pub_items carry no in-file module prefix: re-exports are
        // overwhelmingly at crate root, and prefixing would double-count
        // the path written in the entry itself.
        end
    }

    /// Parse a use tree whose first token is at `i`, with `prefix` the
    /// already-joined leading segments. Pushes `(path, display)` leaves.
    /// Returns the index just past the tree (past `;`/`,`/`}` closers the
    /// caller owns are NOT consumed; the terminating `;` is).
    fn use_tree(&mut self, mut i: usize, prefix: &str, out: &mut Vec<(String, String)>) -> usize {
        let mut segs: Vec<String> = Vec::new();
        let mut alias: Option<String> = None;
        loop {
            match self.kind(i) {
                None => break,
                Some(TokKind::Ident) => {
                    let w = self.word(i).to_string();
                    if w == "as" {
                        alias = Some(self.word(i + 1).to_string());
                        i += 2;
                    } else if w == "self" && !segs.is_empty() {
                        // `a::{self, b}` — handled as a leaf of `prefix`.
                        i += 1;
                    } else {
                        segs.push(w);
                        i += 1;
                    }
                }
                Some(TokKind::Punct(b':')) => i += 1,
                Some(TokKind::Punct(b'*')) => {
                    segs.push("*".to_string());
                    i += 1;
                }
                Some(TokKind::Punct(b'{')) => {
                    let joined = join_path(prefix, &segs);
                    i += 1;
                    loop {
                        match self.kind(i) {
                            None => return i,
                            Some(TokKind::Punct(b'}')) => {
                                i += 1;
                                break;
                            }
                            Some(TokKind::Punct(b',')) => i += 1,
                            _ => i = self.use_tree(i, &joined, out),
                        }
                    }
                    // A brace group is always the last tree element.
                    // Consume a trailing `;` if this was the whole decl.
                    if self.is_punct(i, b';') {
                        i += 1;
                    }
                    return i;
                }
                Some(TokKind::Punct(b';')) => {
                    self.emit_leaf(prefix, &segs, alias.as_deref(), out);
                    return i + 1;
                }
                Some(TokKind::Punct(b',')) | Some(TokKind::Punct(b'}')) => {
                    self.emit_leaf(prefix, &segs, alias.as_deref(), out);
                    return i; // caller consumes the separator
                }
                _ => i += 1,
            }
        }
        self.emit_leaf(prefix, &segs, alias.as_deref(), out);
        i
    }

    fn emit_leaf(
        &self,
        prefix: &str,
        segs: &[String],
        alias: Option<&str>,
        out: &mut Vec<(String, String)>,
    ) {
        let path = join_path(prefix, segs);
        if path.is_empty() {
            return;
        }
        let display = match alias {
            Some(a) if !a.is_empty() => format!("{path} as {a}"),
            _ => path.clone(),
        };
        out.push((path, display));
    }

    fn mod_decl(
        &mut self,
        i: usize,
        path: &mut Vec<String>,
        public: bool,
        in_test: bool,
        ctx: ItemCtx,
    ) -> usize {
        let name = self.word(i + 1).to_string();
        if self.is_punct(i + 2, b';') {
            if ctx.visible {
                self.push_item(path, format!("mod {name}"), ctx.sig_from);
            }
            return i + 3;
        }
        if self.is_punct(i + 2, b'{') {
            if ctx.visible {
                self.push_item(path, format!("mod {name}"), ctx.sig_from);
            }
            path.push(name);
            let end = self.items(i + 3, path, public && ctx.visible, in_test || ctx.cfg_test);
            path.pop();
            return end;
        }
        i + 2
    }

    fn fn_decl(&mut self, i: usize, path: &[String], ctx: ItemCtx, prefix: &str) -> usize {
        let sig = self.signature_end(i);
        if ctx.visible {
            let text = self.normalize(ctx.sig_from, self.offset(sig));
            let entry = if prefix.is_empty() {
                text
            } else {
                format!("{prefix} :: {text}")
            };
            self.push_item(path, entry, ctx.sig_from);
        }
        if self.is_punct(sig, b'{') {
            self.skip_balanced(sig, b'{', b'}')
        } else {
            sig + 1
        }
    }

    fn const_decl(&mut self, i: usize, path: &[String], ctx: ItemCtx, prefix: &str) -> usize {
        // Signature runs to the `=` (value elided — a retuned constant is
        // not an API change) or to the `;` for valueless trait consts.
        let mut j = i;
        let mut depth = 0i32;
        while let Some(kind) = self.kind(j) {
            match kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b'>') if !(j > 0 && self.is_punct(j - 1, b'-')) => depth -= 1,
                TokKind::Punct(b'=') | TokKind::Punct(b';') if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if ctx.visible {
            let text = self.normalize(ctx.sig_from, self.offset(j));
            let entry = if prefix.is_empty() {
                text
            } else {
                format!("{prefix} :: {text}")
            };
            self.push_item(path, entry, ctx.sig_from);
        }
        if self.is_punct(j, b';') {
            j + 1
        } else {
            self.expression_semi(j)
        }
    }

    fn struct_decl(&mut self, i: usize, path: &[String], ctx: ItemCtx) -> usize {
        let name = self.word(i + 1).to_string();
        let sig = self.signature_end(i);
        if self.is_punct(sig, b';') || sig >= self.toks.len() {
            // Unit or tuple struct: the whole declaration is the header.
            if ctx.visible {
                let entry = self.normalize(ctx.sig_from, self.offset(sig));
                self.push_item(path, entry, ctx.sig_from);
            }
            return sig + 1;
        }
        // Braced struct: header entry plus one entry per pub field.
        if ctx.visible {
            let entry = self.normalize(ctx.sig_from, self.offset(sig));
            self.push_item(path, entry, ctx.sig_from);
        }
        let mut j = sig + 1;
        loop {
            match self.kind(j) {
                None => return j,
                Some(TokKind::Punct(b'}')) => return j + 1,
                Some(TokKind::Punct(b',')) => j += 1,
                _ => {
                    // One field: attrs, optional vis, `name: Type`.
                    while self.is_punct(j, b'#') {
                        let mut k = j + 1;
                        if self.is_punct(k, b'[') {
                            k = self.skip_balanced(k, b'[', b']');
                        }
                        j = k;
                    }
                    let mut field_pub = false;
                    if self.word(j) == "pub" {
                        field_pub = true;
                        j += 1;
                        if self.is_punct(j, b'(') {
                            field_pub = false;
                            j = self.skip_balanced(j, b'(', b')');
                        }
                    }
                    let field_from = self.offset(j);
                    // Scan to the `,` or `}` ending the field.
                    let mut depth = 0i32;
                    while let Some(kind) = self.kind(j) {
                        match kind {
                            TokKind::Punct(b'(')
                            | TokKind::Punct(b'[')
                            | TokKind::Punct(b'{')
                            | TokKind::Punct(b'<') => depth += 1,
                            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                            TokKind::Punct(b'>') if !(j > 0 && self.is_punct(j - 1, b'-')) => {
                                depth -= 1
                            }
                            TokKind::Punct(b'}') => {
                                if depth <= 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            TokKind::Punct(b',') if depth <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if ctx.visible && field_pub {
                        let text = self.normalize(field_from, self.offset(j));
                        if !text.is_empty() {
                            self.push_item(path, format!("struct {name} . {text}"), field_from);
                        }
                    }
                }
            }
        }
    }

    fn enum_decl(&mut self, i: usize, path: &[String], ctx: ItemCtx) -> usize {
        let name = self.word(i + 1).to_string();
        let sig = self.signature_end(i);
        if !self.is_punct(sig, b'{') {
            if ctx.visible {
                let entry = self.normalize(ctx.sig_from, self.offset(sig));
                self.push_item(path, entry, ctx.sig_from);
            }
            return sig + 1;
        }
        if ctx.visible {
            let entry = self.normalize(ctx.sig_from, self.offset(sig));
            self.push_item(path, entry, ctx.sig_from);
        }
        // Variants are implicitly public.
        let mut j = sig + 1;
        loop {
            match self.kind(j) {
                None => return j,
                Some(TokKind::Punct(b'}')) => return j + 1,
                Some(TokKind::Punct(b',')) => j += 1,
                _ => {
                    while self.is_punct(j, b'#') {
                        let mut k = j + 1;
                        if self.is_punct(k, b'[') {
                            k = self.skip_balanced(k, b'[', b']');
                        }
                        j = k;
                    }
                    let var_from = self.offset(j);
                    let mut depth = 0i32;
                    while let Some(kind) = self.kind(j) {
                        match kind {
                            TokKind::Punct(b'(')
                            | TokKind::Punct(b'[')
                            | TokKind::Punct(b'{')
                            | TokKind::Punct(b'<') => depth += 1,
                            TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                            TokKind::Punct(b'>') if !(j > 0 && self.is_punct(j - 1, b'-')) => {
                                depth -= 1
                            }
                            TokKind::Punct(b'}') => {
                                if depth <= 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            TokKind::Punct(b',') if depth <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if ctx.visible {
                        let text = self.normalize(var_from, self.offset(j));
                        if !text.is_empty() {
                            self.push_item(path, format!("enum {name} :: {text}"), var_from);
                        }
                    }
                }
            }
        }
    }

    fn trait_decl(&mut self, i: usize, path: &[String], ctx: ItemCtx) -> usize {
        let name = self.word(i + 1).to_string();
        let sig = self.signature_end(i);
        if !self.is_punct(sig, b'{') {
            if ctx.visible {
                let entry = self.normalize(ctx.sig_from, self.offset(sig));
                self.push_item(path, entry, ctx.sig_from);
            }
            return sig + 1;
        }
        if ctx.visible {
            let entry = self.normalize(ctx.sig_from, self.offset(sig));
            self.push_item(path, entry, ctx.sig_from);
        }
        // Trait members have no own visibility: all are API if the trait is.
        self.member_block(sig + 1, path, ctx.visible, &format!("trait {name}"), true)
    }

    fn impl_decl(
        &mut self,
        i: usize,
        path: &[String],
        public: bool,
        in_test: bool,
        ctx: ItemCtx,
    ) -> usize {
        let sig = self.signature_end(i);
        let header = self.normalize(self.offset(i), self.offset(sig));
        if !self.is_punct(sig, b'{') {
            return sig + 1;
        }
        // `impl Trait for Type` (a `for` outside angle brackets that is
        // not an HRTB `for<…>`) is surface as a whole; inherent impls
        // expose their `pub` members.
        let mut is_trait_impl = false;
        let mut angle = 0i32;
        for j in i + 1..sig {
            match self.kind(j) {
                Some(TokKind::Punct(b'<')) => angle += 1,
                Some(TokKind::Punct(b'>')) if !self.is_punct(j - 1, b'-') => angle -= 1,
                Some(TokKind::Ident)
                    if self.word(j) == "for" && angle <= 0 && !self.is_punct(j + 1, b'<') =>
                {
                    is_trait_impl = true;
                    break;
                }
                _ => {}
            }
        }
        let surface = public && !in_test && !ctx.cfg_test;
        if is_trait_impl {
            if surface {
                self.push_item(path, header, ctx.sig_from);
            }
            return self.skip_balanced(sig, b'{', b'}');
        }
        self.member_block(sig + 1, path, surface, &header, false)
    }

    /// Parse the body of a trait or inherent impl: member fns, consts and
    /// types. `all_public` (trait mode) surfaces every member; otherwise
    /// only `pub` members surface. Returns the index past the closing `}`.
    fn member_block(
        &mut self,
        mut i: usize,
        path: &[String],
        parent_visible: bool,
        prefix: &str,
        all_public: bool,
    ) -> usize {
        while i < self.toks.len() {
            if self.is_punct(i, b'}') {
                return i + 1;
            }
            let mut cfg_test = false;
            let start = self.offset(i);
            while self.is_punct(i, b'#') {
                let mut j = i + 1;
                if self.is_punct(j, b'!') {
                    j += 1;
                }
                if self.is_punct(j, b'[') {
                    let (end, ct, _) = self.scan_attr(j);
                    cfg_test |= ct;
                    i = end;
                } else {
                    i = j;
                }
            }
            let mut is_pub = all_public;
            if self.word(i) == "pub" {
                is_pub = true;
                i += 1;
                if self.is_punct(i, b'(') {
                    is_pub = false;
                    i = self.skip_balanced(i, b'(', b')');
                }
            }
            let sig_from = self.offset(i);
            loop {
                match self.word(i) {
                    "const" if self.word(i + 1) == "fn" => i += 1,
                    "unsafe" if matches!(self.word(i + 1), "fn" | "extern") => i += 1,
                    "async" => i += 1,
                    "extern" if self.word(i + 1) == "fn" => i += 1,
                    _ => break,
                }
            }
            let ctx = ItemCtx {
                visible: parent_visible && is_pub && !cfg_test,
                cfg_test,
                macro_export: false,
                sig_from,
            };
            let before = i;
            i = match self.word(i) {
                "fn" => self.fn_decl(i, path, ctx, prefix),
                "const" | "static" => self.const_decl(i, path, ctx, prefix),
                "type" => {
                    let semi = self.expression_semi(i);
                    if ctx.visible {
                        let text =
                            self.normalize(sig_from, self.end_offset(semi).saturating_sub(1));
                        self.push_item(path, format!("{prefix} :: {text}"), sig_from);
                    }
                    semi
                }
                _ => {
                    if self.is_punct(i, b'{') {
                        self.skip_balanced(i, b'{', b'}')
                    } else {
                        i
                    }
                }
            };
            if cfg_test {
                self.out.test_spans.push((start, self.end_offset(i)));
            }
            if i == before {
                i += 1;
            }
        }
        i
    }
}

/// Item context threaded through the per-kind handlers.
#[derive(Clone, Copy)]
struct ItemCtx {
    /// Whether the item lands in the public surface.
    visible: bool,
    /// Whether the item carries `#[cfg(test)]`.
    cfg_test: bool,
    /// Whether the item carries `#[macro_export]`.
    macro_export: bool,
    /// Byte offset where the signature text begins (after attrs and vis).
    sig_from: usize,
}

fn join_path(prefix: &str, segs: &[String]) -> String {
    let tail = segs.join("::");
    match (prefix.is_empty(), tail.is_empty()) {
        (true, _) => tail,
        (false, true) => prefix.to_string(),
        (false, false) => format!("{prefix}::{tail}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(src: &str) -> Vec<String> {
        parse_file(src)
            .pub_items
            .into_iter()
            .map(|it| {
                if it.module_path.is_empty() {
                    it.entry
                } else {
                    format!("{}::{}", it.module_path, it.entry)
                }
            })
            .collect()
    }

    #[test]
    fn functions_and_signatures_normalize() {
        let src = "pub fn quantile(\n    &self,\n    q: f64,\n) -> u64 { 0 }\n";
        assert_eq!(entries(src), vec!["fn quantile( &self, q: f64, ) -> u64"]);
    }

    #[test]
    fn private_items_and_restricted_vis_are_not_surface() {
        let src = "fn a() {}\npub(crate) fn b() {}\npub(super) struct C;\npub fn d() {}\n";
        assert_eq!(entries(src), vec!["fn d()"]);
    }

    #[test]
    fn impl_members_and_trait_impls() {
        let src = "\
pub struct S;
impl S {
    pub fn get(&self) -> u32 { 0 }
    fn private(&self) {}
    pub const K: u32 = 1;
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let got = entries(src);
        assert!(got.contains(&"struct S".to_string()));
        assert!(got.contains(&"impl S :: fn get(&self) -> u32".to_string()));
        assert!(got.contains(&"impl S :: const K: u32".to_string()));
        assert!(got.contains(&"impl std::fmt::Display for S".to_string()));
        assert!(!got.iter().any(|e| e.contains("private")));
        assert!(!got.iter().any(|e| e.contains("fn fmt")));
    }

    #[test]
    fn struct_fields_enum_variants_trait_members() {
        let src = "\
pub struct P { pub x: u32, y: u32, pub(crate) z: u32 }
pub enum E { A, B(u32), C { v: Vec<(u8, u8)> } }
pub trait T { fn m(&self) -> bool; fn with_default(&self) -> u8 { 0 } }
";
        let got = entries(src);
        assert!(got.contains(&"struct P . x: u32".to_string()));
        assert!(!got.iter().any(|e| e.contains(". y")));
        assert!(!got.iter().any(|e| e.contains(". z")));
        assert!(got.contains(&"enum E :: A".to_string()));
        assert!(got.contains(&"enum E :: B(u32)".to_string()));
        assert!(got.contains(&"enum E :: C { v: Vec<(u8, u8)> }".to_string()));
        assert!(got.contains(&"trait T :: fn m(&self) -> bool".to_string()));
        assert!(got.contains(&"trait T :: fn with_default(&self) -> u8".to_string()));
    }

    #[test]
    fn modules_gate_visibility_and_build_paths() {
        let src = "\
pub mod outer {
    pub fn reachable() {}
    mod hidden { pub fn unreachable_fn() {} }
}
mod private_mod { pub fn also_unreachable() {} }
";
        let got = entries(src);
        assert!(got.contains(&"mod outer".to_string()));
        assert!(got.contains(&"outer::fn reachable()".to_string()));
        assert!(!got.iter().any(|e| e.contains("unreachable")));
    }

    #[test]
    fn cfg_test_code_is_excluded_and_spanned() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    pub fn helper() {}
    #[test]
    fn case() { assert!(true); }
}
";
        let parsed = parse_file(src);
        let got: Vec<&str> = parsed.pub_items.iter().map(|i| i.entry.as_str()).collect();
        assert_eq!(got, vec!["fn real()"]);
        assert_eq!(parsed.test_spans.len(), 1);
        let span = parsed.test_spans[0];
        let helper_at = src.find("helper").unwrap();
        assert!(parsed.in_test_code(helper_at));
        assert!(!parsed.in_test_code(src.find("real").unwrap()));
        assert!(span.0 < span.1 && span.1 <= src.len());
    }

    #[test]
    fn use_trees_expand_and_pub_use_is_surface() {
        let src = "\
use ssdx_sim::{SimTime, hash::{FastHashMap, fast}};
pub use config::{SsdConfig, ConfigError as CfgErr};
use ssdx_nand::NandOp;
";
        let parsed = parse_file(src);
        let paths: Vec<&str> = parsed.uses.iter().map(|u| u.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "ssdx_sim::SimTime",
                "ssdx_sim::hash::FastHashMap",
                "ssdx_sim::hash::fast",
                "config::SsdConfig",
                "config::ConfigError",
                "ssdx_nand::NandOp",
            ]
        );
        let surface: Vec<&str> = parsed.pub_items.iter().map(|i| i.entry.as_str()).collect();
        assert_eq!(
            surface,
            vec!["use config::SsdConfig", "use config::ConfigError as CfgErr"]
        );
        assert_eq!(
            parsed
                .crate_refs
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["ssdx_nand", "ssdx_sim"]
        );
    }

    #[test]
    fn crate_refs_ignore_strings_and_comments() {
        let src = "\
// prose about ssdx_core::Explorer
fn f() -> &'static str { \"ssdx_dram as data\" }
use ssdx_sim::SimTime;
";
        let parsed = parse_file(src);
        assert_eq!(
            parsed
                .crate_refs
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["ssdx_sim"]
        );
    }

    #[test]
    fn consts_cut_at_value_and_generics_do_not_confuse_bodies() {
        let src = "\
pub const TABLE: &[(u32, u32)] = &[(1, 2), (3, 4)];
pub fn generic<T: Into<Vec<u8>>>(t: T) -> Option<T> where T: Clone { Some(t) }
pub fn after() {}
";
        let got = entries(src);
        assert_eq!(
            got,
            vec![
                "const TABLE: &[(u32, u32)]",
                "fn generic<T: Into<Vec<u8>>>(t: T) -> Option<T> where T: Clone",
                "fn after()",
            ]
        );
    }

    #[test]
    fn exported_macros_surface() {
        let src = "\
#[macro_export]\nmacro_rules! visible { () => {} }
macro_rules! hidden { () => {} }
pub fn tail() {}
";
        let got = entries(src);
        assert_eq!(got, vec!["macro visible!", "fn tail()"]);
    }
}
