//! Cross-file structural analyses: crate layering and public-API drift.
//!
//! The token rules in [`crate::rules`] are single-file by construction.
//! Two of the workspace's load-bearing contracts are not:
//!
//! - **`layer-violation`** — the ARCHITECTURE.md dependency map promises a
//!   strict layering (kernel → substrate → platform → harness → facade,
//!   see [`LAYERS`]). Every member crate's `Cargo.toml` dependency edges
//!   and every in-code `ssdx_*` reference are checked against that table;
//!   upward or sideways edges, and declared-but-unused inter-crate
//!   dependencies, are findings.
//! - **`api-drift`** — each library crate's public surface (extracted by
//!   [`crate::parse`]) is pinned in a committed snapshot under
//!   `crates/lint/api/<crate>.api`. Any drift fails with a diff-style
//!   diagnostic; intentional changes are re-pinned with `--update-api`,
//!   which makes every API change visible in review as a snapshot diff.
//!
//! Both analyses run from [`run`], which [`crate::engine::lint_workspace`]
//! invokes after the per-file rules, so `ssdx-lint --workspace`, the
//! tier-1 `lint_clean` test, and CI all see the same findings. Inline
//! `ssdx-lint::allow(...)` does not apply here: a layering or API change
//! is never a single-site exception — it is either a table/snapshot update
//! (reviewed in this crate) or a bug.

use std::fs;
use std::io;
use std::path::Path;

use crate::diag::Diagnostic;
use crate::engine::SourceText;
use crate::parse;

/// Name of the crate-layering analysis.
pub const LAYER_VIOLATION: &str = "layer-violation";
/// Name of the public-API snapshot analysis.
pub const API_DRIFT: &str = "api-drift";

/// Metadata for one workspace-level analysis (the cross-file counterpart
/// of [`crate::rules::RuleSpec`]); `--list` prints these after the rules.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisSpec {
    /// Registry name (kebab-case), as it appears in diagnostics.
    pub name: &'static str,
    /// One-line statement of the contract the analysis enforces.
    pub contract: &'static str,
    /// What to do when the analysis fires.
    pub help: &'static str,
}

/// The workspace-level analyses, one entry per diagnostic name.
pub const ANALYSES: &[AnalysisSpec] = &[
    AnalysisSpec {
        name: LAYER_VIOLATION,
        contract: "crate layering: dependencies point strictly downward \
                   (kernel -> substrate -> platform -> harness -> facade) and every \
                   declared inter-crate edge is used",
        help: "depend only on lower layers (see the ARCHITECTURE.md dependency map); \
               a genuinely new edge is a reviewed change to the LAYERS table in \
               crates/lint/src/analysis.rs",
    },
    AnalysisSpec {
        name: API_DRIFT,
        contract: "public API stability: each library crate's surface matches its \
                   committed snapshot under crates/lint/api/",
        help: "if the change is intentional, re-pin with \
               `cargo run -p ssdx-lint -- --update-api` and commit the snapshot diff",
    },
];

/// Look up an analysis spec by name.
pub fn analysis_spec(name: &str) -> Option<&'static AnalysisSpec> {
    ANALYSES.iter().find(|s| s.name == name)
}

/// Architectural layers, lowest first. A crate may depend only on crates
/// in strictly lower layers (plus the audited [`INTRA_LAYER_EDGES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// The event kernel: `ssdx-sim` (time, events, rng, hashing).
    Kernel,
    /// Hardware component models, mutually independent.
    Substrate,
    /// The platform assembly: `ssdx-core` wires components into an SSD.
    Platform,
    /// Measurement and audit tooling that observes the platform.
    Harness,
    /// The `ssdexplorer` facade crate re-exporting the public surface.
    Facade,
}

impl Layer {
    /// The layer's lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Kernel => "kernel",
            Layer::Substrate => "substrate",
            Layer::Platform => "platform",
            Layer::Harness => "harness",
            Layer::Facade => "facade",
        }
    }
}

/// One workspace member's place in the layer table.
#[derive(Debug, Clone, Copy)]
pub struct CrateLayer {
    /// Package name as written in `Cargo.toml` (`ssdx-sim`, …).
    pub name: &'static str,
    /// Workspace-relative crate directory (`""` for the root package).
    pub dir: &'static str,
    /// The layer the crate belongs to.
    pub layer: Layer,
}

/// The declarative layer table, mirroring the ARCHITECTURE.md dependency
/// map. Every workspace member (vendored stand-ins aside) appears here; a
/// new crate must be placed in a layer before the workspace lints clean
/// (`tests/lint_clean.rs` cross-checks this table against `[workspace]`
/// members).
pub const LAYERS: &[CrateLayer] = &[
    CrateLayer {
        name: "ssdx-sim",
        dir: "crates/sim",
        layer: Layer::Kernel,
    },
    CrateLayer {
        name: "ssdx-nand",
        dir: "crates/nand",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-dram",
        dir: "crates/dram",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-interconnect",
        dir: "crates/interconnect",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-cpu",
        dir: "crates/cpu",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-channel",
        dir: "crates/channel",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-ecc",
        dir: "crates/ecc",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-compress",
        dir: "crates/compress",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-hostif",
        dir: "crates/hostif",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-ftl",
        dir: "crates/ftl",
        layer: Layer::Substrate,
    },
    CrateLayer {
        name: "ssdx-core",
        dir: "crates/core",
        layer: Layer::Platform,
    },
    CrateLayer {
        name: "ssdx-bench",
        dir: "crates/bench",
        layer: Layer::Harness,
    },
    CrateLayer {
        name: "ssdx-alloctrack",
        dir: "crates/alloctrack",
        layer: Layer::Harness,
    },
    CrateLayer {
        name: "ssdx-lint",
        dir: "crates/lint",
        layer: Layer::Harness,
    },
    CrateLayer {
        name: "ssdx-server",
        dir: "crates/server",
        layer: Layer::Harness,
    },
    CrateLayer {
        name: "ssdexplorer",
        dir: "",
        layer: Layer::Facade,
    },
];

/// Audited same-layer dependency edges: `(from, to, why)`. Anything not in
/// this table must point strictly downward.
pub const INTRA_LAYER_EDGES: &[(&str, &str, &str)] = &[(
    "ssdx-channel",
    "ssdx-nand",
    "the channel controller drives NAND dies over ONFI; the bus model is \
     inseparable from the command set it carries",
)];

/// Library crates whose public surface is snapshot under
/// `crates/lint/api/<name>.api`: `(package name, src dir)`. Most harness
/// crates (bench CLI, alloctrack, this linter) are deliberately absent —
/// nothing outside the workspace programs against them. `ssdx-server` IS
/// pinned: remote clients program against its protocol and client
/// library, so its surface is a compatibility contract.
pub const API_CRATES: &[(&str, &str)] = &[
    ("ssdexplorer", "src"),
    ("ssdx-channel", "crates/channel/src"),
    ("ssdx-compress", "crates/compress/src"),
    ("ssdx-core", "crates/core/src"),
    ("ssdx-cpu", "crates/cpu/src"),
    ("ssdx-dram", "crates/dram/src"),
    ("ssdx-ecc", "crates/ecc/src"),
    ("ssdx-ftl", "crates/ftl/src"),
    ("ssdx-hostif", "crates/hostif/src"),
    ("ssdx-interconnect", "crates/interconnect/src"),
    ("ssdx-nand", "crates/nand/src"),
    ("ssdx-server", "crates/server/src"),
    ("ssdx-sim", "crates/sim/src"),
];

/// Directory (workspace-relative) holding the committed API snapshots.
pub const API_DIR: &str = "crates/lint/api";

/// Counts proving the analyses actually looked at something; the tier-1
/// blindness guards assert these match the tables above.
#[derive(Debug, Default, Clone, Copy)]
pub struct AnalysisStats {
    /// Crates whose manifest the layering analysis parsed.
    pub layer_crates_checked: usize,
    /// Crates whose extracted surface was compared against a snapshot
    /// (or flagged as missing one).
    pub api_crates_checked: usize,
}

/// One dependency edge read out of a manifest.
struct ManifestDep {
    name: String,
    line: usize,
    snippet: String,
    dev: bool,
}

/// Parse the `ssdx-*` entries of `[dependencies]` / `[dev-dependencies]`.
/// Line-based on purpose: workspace manifests are flat tables, and a
/// hand-rolled scan keeps the linter dependency-free.
fn manifest_deps(text: &str) -> Vec<ManifestDep> {
    let mut out = Vec::new();
    let mut section: Option<bool> = None; // Some(dev?) inside a dep table
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[dependencies]" => Some(false),
                "[dev-dependencies]" => Some(true),
                _ => None,
            };
            continue;
        }
        let Some(dev) = section else { continue };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if name.starts_with("ssdx-") {
            out.push(ManifestDep {
                name,
                line: idx + 1,
                snippet: raw.to_string(),
                dev,
            });
        }
    }
    out
}

fn layer_of(name: &str) -> Option<Layer> {
    LAYERS.iter().find(|c| c.name == name).map(|c| c.layer)
}

fn edge_allowed(from: Layer, to: Layer, from_name: &str, to_name: &str) -> bool {
    to < from
        || INTRA_LAYER_EDGES
            .iter()
            .any(|(f, t, _)| *f == from_name && *t == to_name)
}

/// The crate (from [`LAYERS`]) owning a workspace-relative source path.
fn owning_crate(rel: &str) -> Option<&'static CrateLayer> {
    LAYERS
        .iter()
        .filter(|c| !c.dir.is_empty())
        .find(|c| rel.starts_with(c.dir) && rel.as_bytes().get(c.dir.len()) == Some(&b'/'))
        .or_else(|| {
            // Anything not under a member crate (src/, tests/, examples/)
            // belongs to the root facade package.
            LAYERS.iter().find(|c| c.dir.is_empty())
        })
}

fn line_col_snippet(text: &str, offset: usize) -> (usize, usize, String) {
    let offset = offset.min(text.len());
    let line_start = text[..offset].rfind('\n').map_or(0, |p| p + 1);
    let line = text[..offset].bytes().filter(|&b| b == b'\n').count() + 1;
    let col = text[line_start..offset].chars().count() + 1;
    let line_end = text[offset..].find('\n').map_or(text.len(), |p| offset + p);
    (line, col, text[line_start..line_end].to_string())
}

/// The crate name (`ssdx-foo`) for an in-code identifier (`ssdx_foo`).
fn crate_name_of_ident(ident: &str) -> String {
    ident.replace('_', "-")
}

/// Run the crate-layering analysis over every member manifest plus the
/// parsed in-code crate references.
fn check_layers(
    root: &Path,
    parsed: &[(usize, parse::ParsedFile)],
    files: &[SourceText],
    diags: &mut Vec<Diagnostic>,
    stats: &mut AnalysisStats,
) -> io::Result<()> {
    let help = analysis_spec(LAYER_VIOLATION).map(|s| s.help);
    for member in LAYERS {
        let manifest_rel = if member.dir.is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", member.dir)
        };
        let manifest_path = root.join(&manifest_rel);
        if !manifest_path.is_file() {
            // Absent members are skipped so the analysis also runs over
            // the synthetic mini-workspaces the tests build; tier-1's
            // blindness guard pins the real tree to the full table.
            continue;
        }
        let text = fs::read_to_string(&manifest_path)?;
        stats.layer_crates_checked += 1;
        let deps = manifest_deps(&text);

        // (1) Every declared edge points at a lower layer.
        for dep in &deps {
            let Some(to_layer) = layer_of(&dep.name) else {
                continue;
            };
            if !edge_allowed(member.layer, to_layer, member.name, &dep.name) {
                diags.push(Diagnostic {
                    rule: LAYER_VIOLATION,
                    path: manifest_rel.clone(),
                    line: dep.line,
                    col: 1,
                    width: dep.name.chars().count(),
                    message: format!(
                        "`{}` ({}) must not depend on `{}` ({}): edges point strictly \
                         toward lower layers",
                        member.name,
                        member.layer.name(),
                        dep.name,
                        to_layer.name(),
                    ),
                    snippet: dep.snippet.clone(),
                    help,
                });
            }
        }

        // (2) Every declared edge is referenced somewhere in the crate.
        let ident_of = |dep: &str| dep.replace('-', "_");
        for dep in &deps {
            if layer_of(&dep.name).is_none() {
                continue;
            }
            let ident = ident_of(&dep.name);
            let used = parsed.iter().any(|(file_idx, p)| {
                let rel = &files[*file_idx].rel;
                owning_crate(rel).is_some_and(|c| c.name == member.name)
                    && p.crate_refs.iter().any(|(n, _)| *n == ident)
            });
            if !used {
                diags.push(Diagnostic {
                    rule: LAYER_VIOLATION,
                    path: manifest_rel.clone(),
                    line: dep.line,
                    col: 1,
                    width: dep.name.chars().count(),
                    message: format!(
                        "`{}` declares `{}` in [{}dependencies] but no source under \
                         `{}` references `{ident}`",
                        member.name,
                        dep.name,
                        if dep.dev { "dev-" } else { "" },
                        if member.dir.is_empty() {
                            "src|tests|examples"
                        } else {
                            member.dir
                        },
                    ),
                    snippet: dep.snippet.clone(),
                    help,
                });
            }
        }
    }

    // (3) In-code references respect the layering even when the manifest
    // edge is legal (e.g. a doc example sneaking an upward path in).
    for (file_idx, p) in parsed {
        let file = &files[*file_idx];
        let Some(owner) = owning_crate(&file.rel) else {
            continue;
        };
        for (ident, offset) in &p.crate_refs {
            let target = crate_name_of_ident(ident);
            if target == owner.name {
                continue;
            }
            let Some(to_layer) = layer_of(&target) else {
                continue;
            };
            if !edge_allowed(owner.layer, to_layer, owner.name, &target) {
                let (line, col, snippet) = line_col_snippet(&file.text, *offset);
                diags.push(Diagnostic {
                    rule: LAYER_VIOLATION,
                    path: file.rel.clone(),
                    line,
                    col,
                    width: ident.chars().count(),
                    message: format!(
                        "`{}` ({}) code references `{target}` ({}): edges point \
                         strictly toward lower layers",
                        owner.name,
                        owner.layer.name(),
                        to_layer.name(),
                    ),
                    snippet,
                    help,
                });
            }
        }
    }
    Ok(())
}

/// Module prefix for a source file inside a crate's `src/` tree, or `None`
/// when the file is not API surface (binaries).
fn module_prefix(rel_in_src: &str) -> Option<String> {
    if rel_in_src == "lib.rs" {
        return Some(String::new());
    }
    if rel_in_src == "main.rs" || rel_in_src.starts_with("bin/") {
        return None;
    }
    let stem = rel_in_src.strip_suffix(".rs")?;
    let stem = stem.strip_suffix("/mod").unwrap_or(stem);
    Some(stem.replace('/', "::"))
}

/// Extract one crate's public surface as sorted, deduplicated lines.
fn extract_crate_api(
    src_dir: &str,
    parsed: &[(usize, parse::ParsedFile)],
    files: &[SourceText],
) -> Vec<String> {
    let mut lines = Vec::new();
    for (file_idx, p) in parsed {
        let rel = &files[*file_idx].rel;
        let Some(in_src) = rel.strip_prefix(src_dir).and_then(|r| r.strip_prefix('/')) else {
            continue;
        };
        let Some(prefix) = module_prefix(in_src) else {
            continue;
        };
        for item in &p.pub_items {
            let module = match (prefix.is_empty(), item.module_path.is_empty()) {
                (true, true) => String::new(),
                (true, false) => item.module_path.clone(),
                (false, true) => prefix.clone(),
                (false, false) => format!("{prefix}::{}", item.module_path),
            };
            if module.is_empty() {
                lines.push(item.entry.clone());
            } else {
                lines.push(format!("{module} :: {}", item.entry));
            }
        }
    }
    lines.sort();
    lines.dedup();
    lines
}

/// Render one crate's snapshot file contents (header + sorted surface).
fn render_snapshot(crate_name: &str, lines: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# public API surface of `{crate_name}`, pinned by ssdx-lint's api-drift analysis.\n"
    ));
    out.push_str(
        "# one line per public item; sorted; regenerate (never hand-edit) with:\n\
         #   cargo run -p ssdx-lint -- --update-api\n",
    );
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The non-comment, non-blank payload lines of a snapshot file.
fn snapshot_payload(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| l.to_string())
        .collect()
}

/// Summarize an API diff on one line: up to `cap` entries per direction.
fn diff_summary(added: &[&String], removed: &[&String], cap: usize) -> String {
    let mut parts = Vec::new();
    for entry in added.iter().take(cap) {
        parts.push(format!("+ {entry}"));
    }
    if added.len() > cap {
        parts.push(format!("+ …{} more", added.len() - cap));
    }
    for entry in removed.iter().take(cap) {
        parts.push(format!("- {entry}"));
    }
    if removed.len() > cap {
        parts.push(format!("- …{} more", removed.len() - cap));
    }
    parts.join("; ")
}

/// Run the api-drift analysis: compare each library crate's extracted
/// surface against its committed snapshot.
fn check_api(
    root: &Path,
    parsed: &[(usize, parse::ParsedFile)],
    files: &[SourceText],
    diags: &mut Vec<Diagnostic>,
    stats: &mut AnalysisStats,
) -> io::Result<()> {
    let help = analysis_spec(API_DRIFT).map(|s| s.help);
    let mut expected_snapshots = Vec::new();
    for (crate_name, src_dir) in API_CRATES {
        let has_sources = files.iter().any(|f| {
            f.rel.starts_with(src_dir) && f.rel.as_bytes().get(src_dir.len()) == Some(&b'/')
        });
        if !has_sources {
            continue; // synthetic mini-workspaces; guarded in tier-1
        }
        stats.api_crates_checked += 1;
        let snap_rel = format!("{API_DIR}/{crate_name}.api");
        expected_snapshots.push(format!("{crate_name}.api"));
        let surface = extract_crate_api(src_dir, parsed, files);
        let snap_path = root.join(&snap_rel);
        if !snap_path.is_file() {
            diags.push(Diagnostic {
                rule: API_DRIFT,
                path: snap_rel,
                line: 1,
                col: 1,
                width: 1,
                message: format!(
                    "no committed API snapshot for `{crate_name}` ({} public items extracted)",
                    surface.len()
                ),
                snippet: String::new(),
                help,
            });
            continue;
        }
        let committed = snapshot_payload(&fs::read_to_string(&snap_path)?);
        if committed != surface {
            let added: Vec<&String> = surface.iter().filter(|l| !committed.contains(l)).collect();
            let removed: Vec<&String> = committed.iter().filter(|l| !surface.contains(l)).collect();
            diags.push(Diagnostic {
                rule: API_DRIFT,
                path: snap_rel,
                line: 1,
                col: 1,
                width: 1,
                message: format!(
                    "public API of `{crate_name}` drifted from its snapshot \
                     ({} added, {} removed): {}",
                    added.len(),
                    removed.len(),
                    diff_summary(&added, &removed, 3),
                ),
                snippet: String::new(),
                help,
            });
        }
    }

    // Stale snapshots (crate renamed or removed) would silently pin
    // nothing; flag them so the api/ directory mirrors API_CRATES exactly.
    let api_dir = root.join(API_DIR);
    if api_dir.is_dir() && !expected_snapshots.is_empty() {
        let mut names: Vec<String> = fs::read_dir(&api_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".api"))
            .collect();
        names.sort();
        for name in names {
            if !expected_snapshots.contains(&name) {
                diags.push(Diagnostic {
                    rule: API_DRIFT,
                    path: format!("{API_DIR}/{name}"),
                    line: 1,
                    col: 1,
                    width: 1,
                    message: format!(
                        "stale snapshot `{name}`: no crate in the API_CRATES table claims it"
                    ),
                    snippet: String::new(),
                    help,
                });
            }
        }
    }
    Ok(())
}

/// Run every workspace-level analysis over the collected sources.
pub fn run(root: &Path, files: &[SourceText]) -> io::Result<(Vec<Diagnostic>, AnalysisStats)> {
    let parsed: Vec<(usize, parse::ParsedFile)> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (i, parse::parse_file(&f.text)))
        .collect();
    let mut diags = Vec::new();
    let mut stats = AnalysisStats::default();
    check_layers(root, &parsed, files, &mut diags, &mut stats)?;
    check_api(root, &parsed, files, &mut diags, &mut stats)?;
    Ok((diags, stats))
}

/// Render every crate's snapshot from the tree as `(name, contents)`,
/// sorted by crate name — the pure core of `--update-api`.
pub fn api_snapshots(files: &[SourceText]) -> Vec<(String, String)> {
    let parsed: Vec<(usize, parse::ParsedFile)> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (i, parse::parse_file(&f.text)))
        .collect();
    let mut out = Vec::new();
    for (crate_name, src_dir) in API_CRATES {
        let has_sources = files.iter().any(|f| {
            f.rel.starts_with(src_dir) && f.rel.as_bytes().get(src_dir.len()) == Some(&b'/')
        });
        if !has_sources {
            continue;
        }
        let surface = extract_crate_api(src_dir, &parsed, files);
        out.push((
            crate_name.to_string(),
            render_snapshot(crate_name, &surface),
        ));
    }
    out
}

/// Regenerate the snapshot files under `crates/lint/api/`, writing only
/// those whose contents change. Returns `(crate name, changed)` pairs.
pub fn update_api_snapshots(root: &Path) -> io::Result<Vec<(String, bool)>> {
    let files = crate::engine::collect_sources(root)?;
    let api_dir = root.join(API_DIR);
    fs::create_dir_all(&api_dir)?;
    let mut out = Vec::new();
    for (name, contents) in api_snapshots(&files) {
        let path = api_dir.join(format!("{name}.api"));
        let current = fs::read_to_string(&path).unwrap_or_default();
        let changed = current != contents;
        if changed {
            fs::write(&path, &contents)?;
        }
        out.push((name, changed));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_well_formed() {
        let mut names: Vec<&str> = LAYERS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LAYERS.len(), "layer table names are unique");
        for (from, to, why) in INTRA_LAYER_EDGES {
            assert!(!why.is_empty(), "intra-layer edges carry a reason");
            assert_eq!(
                layer_of(from),
                layer_of(to),
                "{from}->{to}: exception table is for same-layer edges only"
            );
        }
        for (name, src_dir) in API_CRATES {
            assert!(
                layer_of(name).is_some(),
                "API crate {name} must appear in the layer table"
            );
            assert!(src_dir.ends_with("src") || *src_dir == "src");
        }
        for a in ANALYSES {
            assert!(!a.contract.is_empty() && !a.help.is_empty());
        }
    }

    #[test]
    fn edge_rules() {
        assert!(edge_allowed(
            Layer::Platform,
            Layer::Kernel,
            "ssdx-core",
            "ssdx-sim"
        ));
        assert!(edge_allowed(
            Layer::Substrate,
            Layer::Substrate,
            "ssdx-channel",
            "ssdx-nand"
        ));
        assert!(!edge_allowed(
            Layer::Substrate,
            Layer::Substrate,
            "ssdx-nand",
            "ssdx-channel"
        ));
        assert!(!edge_allowed(
            Layer::Kernel,
            Layer::Platform,
            "ssdx-sim",
            "ssdx-core"
        ));
        assert!(!edge_allowed(
            Layer::Substrate,
            Layer::Platform,
            "ssdx-ftl",
            "ssdx-core"
        ));
    }

    #[test]
    fn manifest_deps_reads_both_tables() {
        let toml = "\
[package]
name = \"x\"

[dependencies]
ssdx-sim.workspace = true
serde = { workspace = true }
ssdx-nand = { path = \"../nand\" }

[dev-dependencies]
ssdx-lint.workspace = true

[lints]
workspace = true
";
        let deps = manifest_deps(toml);
        let got: Vec<(&str, bool)> = deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            got,
            vec![
                ("ssdx-sim", false),
                ("ssdx-nand", false),
                ("ssdx-lint", true)
            ]
        );
        assert_eq!(deps[0].line, 5);
    }

    #[test]
    fn module_prefixes() {
        assert_eq!(module_prefix("lib.rs").as_deref(), Some(""));
        assert_eq!(module_prefix("hash.rs").as_deref(), Some("hash"));
        assert_eq!(module_prefix("hash/mod.rs").as_deref(), Some("hash"));
        assert_eq!(module_prefix("a/b.rs").as_deref(), Some("a::b"));
        assert_eq!(module_prefix("main.rs"), None);
        assert_eq!(module_prefix("bin/tool.rs"), None);
    }

    #[test]
    fn owning_crate_maps_paths() {
        assert_eq!(
            owning_crate("crates/sim/src/lib.rs").unwrap().name,
            "ssdx-sim"
        );
        assert_eq!(
            owning_crate("crates/sim/tests/props.rs").unwrap().name,
            "ssdx-sim"
        );
        assert_eq!(owning_crate("src/lib.rs").unwrap().name, "ssdexplorer");
        assert_eq!(owning_crate("tests/golden.rs").unwrap().name, "ssdexplorer");
    }

    #[test]
    fn snapshot_roundtrip_ignores_header() {
        let lines = vec!["fn a()".to_string(), "struct B".to_string()];
        let rendered = render_snapshot("ssdx-x", &lines);
        assert_eq!(snapshot_payload(&rendered), lines);
    }
}
