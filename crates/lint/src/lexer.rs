//! A minimal Rust lexer that classifies every byte of a source file.
//!
//! The rules in this crate are textual pattern matchers, and the single way
//! a textual matcher goes wrong is firing inside a string literal or a
//! comment (`"std::collections::HashMap"` as data, `// no Instant here` as
//! prose). This lexer exists to rule that out: it partitions a source file
//! into [`Region`]s — code, string/char literals, comments — so rules only
//! ever look at the code partition.
//!
//! It is deliberately *not* a parser. It recognises exactly the token
//! classes whose contents must be masked:
//!
//! - line comments (`//`), with `///` and `//!` classified as doc comments
//! - block comments (`/* */`), nested, with `/**` and `/*!` as doc comments
//! - string literals (`"…"`), including `b"…"` and `c"…"`, with escapes
//! - raw strings (`r"…"`, `r#"…"#`, any hash depth, `br`/`cr` prefixes)
//! - char and byte-char literals (`'x'`, `b'\n'`), disambiguated from
//!   lifetimes (`'a`, `'static`)
//!
//! Everything else is code. The lexer is total: it never panics, accepts
//! arbitrary (even invalid) input, and always tiles `[0, len)` exactly —
//! properties pinned by the proptest suite in `tests/lexer_props.rs`.
//! Unterminated literals and comments extend to end of input, which is the
//! conservative choice for a linter (nothing after an unterminated opener
//! can be trusted as code).

/// Classification of a contiguous byte range of source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Ordinary code: the only region rules scan.
    Code,
    /// `"…"`, `b"…"`, `c"…"` string literal, delimiters included.
    Str,
    /// `r"…"` / `r#"…"#` raw string literal (also `br`/`cr` forms).
    RawStr,
    /// `'x'` char or `b'x'` byte literal.
    Char,
    /// `//` comment up to (not including) the newline.
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
    /// `///`, `//!`, `/**`, `/*!` documentation comment.
    DocComment,
}

impl RegionKind {
    /// Comments of any flavour: the places suppression directives live.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            RegionKind::LineComment | RegionKind::BlockComment | RegionKind::DocComment
        )
    }
}

/// A half-open byte range `[start, end)` of one [`RegionKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// What kind of text this region holds.
    pub kind: RegionKind,
    /// Byte offset where the region begins (inclusive).
    pub start: usize,
    /// Byte offset where the region ends (exclusive).
    pub end: usize,
}

/// Lex `src` into regions that tile `[0, src.len())` exactly, in order.
///
/// Region boundaries always fall on ASCII delimiters or after a complete
/// UTF-8 character, so every boundary is a valid `char` boundary and the
/// regions can be sliced back out of `src` safely.
pub fn lex(src: &str) -> Vec<Region> {
    Lexer {
        bytes: src.as_bytes(),
        src,
    }
    .run()
}

/// Per-byte code mask for `src`: `mask[i]` is true iff byte `i` is code.
pub fn code_mask(src: &str, regions: &[Region]) -> Vec<bool> {
    let mut mask = vec![false; src.len()];
    for region in regions {
        if region.kind == RegionKind::Code {
            for flag in &mut mask[region.start..region.end] {
                *flag = true;
            }
        }
    }
    mask
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
}

impl Lexer<'_> {
    fn run(&self) -> Vec<Region> {
        let bytes = self.bytes;
        let len = bytes.len();
        let mut regions = Vec::new();
        let mut code_start = 0usize;
        let mut i = 0usize;

        let emit = |regions: &mut Vec<Region>, code_start: &mut usize, r: Region| {
            if r.start > *code_start {
                regions.push(Region {
                    kind: RegionKind::Code,
                    start: *code_start,
                    end: r.start,
                });
            }
            *code_start = r.end;
            regions.push(r);
        };

        while i < len {
            let c = bytes[i];
            match c {
                b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                    let end = self.line_comment_end(i);
                    let kind = self.line_comment_kind(i);
                    emit(
                        &mut regions,
                        &mut code_start,
                        Region {
                            kind,
                            start: i,
                            end,
                        },
                    );
                    i = end;
                }
                b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                    let end = self.block_comment_end(i);
                    let kind = self.block_comment_kind(i);
                    emit(
                        &mut regions,
                        &mut code_start,
                        Region {
                            kind,
                            start: i,
                            end,
                        },
                    );
                    i = end;
                }
                b'"' => {
                    let end = self.string_end(i + 1);
                    emit(
                        &mut regions,
                        &mut code_start,
                        Region {
                            kind: RegionKind::Str,
                            start: i,
                            end,
                        },
                    );
                    i = end;
                }
                b'r' | b'b' | b'c' if !self.prev_is_ident(i) => {
                    // Prefixed literal? `r"…"`, `r#"…"#`, `b"…"`, `b'…'`,
                    // `br#"…"#`, `c"…"`, `cr#"…"#`. When the prefix does not
                    // introduce a literal it is an ordinary identifier char.
                    if let Some((kind, end)) = self.prefixed_literal(i) {
                        emit(
                            &mut regions,
                            &mut code_start,
                            Region {
                                kind,
                                start: i,
                                end,
                            },
                        );
                        i = end;
                    } else {
                        i += 1;
                    }
                }
                b'\'' => {
                    if let Some(end) = self.char_literal_end(i) {
                        emit(
                            &mut regions,
                            &mut code_start,
                            Region {
                                kind: RegionKind::Char,
                                start: i,
                                end,
                            },
                        );
                        i = end;
                    } else {
                        // A lifetime (`'a`) or stray quote: stays code.
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        if code_start < len {
            regions.push(Region {
                kind: RegionKind::Code,
                start: code_start,
                end: len,
            });
        }
        regions
    }

    fn prev_is_ident(&self, i: usize) -> bool {
        i > 0 && is_ident_byte(self.bytes[i - 1])
    }

    fn line_comment_kind(&self, start: usize) -> RegionKind {
        let rest = &self.bytes[start..];
        // `////…` is an ordinary comment in rustc; `///` and `//!` are docs.
        if rest.starts_with(b"//!") || (rest.starts_with(b"///") && !rest.starts_with(b"////")) {
            RegionKind::DocComment
        } else {
            RegionKind::LineComment
        }
    }

    fn line_comment_end(&self, start: usize) -> usize {
        self.bytes[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(self.bytes.len(), |off| start + off)
    }

    fn block_comment_kind(&self, start: usize) -> RegionKind {
        let rest = &self.bytes[start..];
        // `/**/` is empty (not a doc comment); `/**` and `/*!` are docs.
        if rest.starts_with(b"/*!") || (rest.starts_with(b"/**") && !rest.starts_with(b"/**/")) {
            RegionKind::DocComment
        } else {
            RegionKind::BlockComment
        }
    }

    fn block_comment_end(&self, start: usize) -> usize {
        let bytes = self.bytes;
        let len = bytes.len();
        let mut depth = 0usize;
        let mut i = start;
        while i < len {
            if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                depth += 1;
                i += 2;
            } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    return i;
                }
            } else {
                i += 1;
            }
        }
        len
    }

    /// End of a `"…"` string whose opening quote sits just before `after`.
    fn string_end(&self, after: usize) -> usize {
        let bytes = self.bytes;
        let len = bytes.len();
        let mut i = after;
        while i < len {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        len
    }

    /// Recognise `r`/`b`/`c`-prefixed literals starting at `i`.
    fn prefixed_literal(&self, i: usize) -> Option<(RegionKind, usize)> {
        let bytes = self.bytes;
        let len = bytes.len();
        let mut j = i;
        // Consume the prefix letters (at most two: `br`, `cr`).
        let raw = match bytes[j] {
            b'r' => {
                j += 1;
                true
            }
            b'b' | b'c' => {
                j += 1;
                if j < len && bytes[j] == b'r' {
                    j += 1;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if raw {
            // `r`, `br`, `cr`: hashes then a quote.
            let mut hashes = 0usize;
            while j < len && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < len && bytes[j] == b'"' {
                return Some((RegionKind::RawStr, self.raw_string_end(j + 1, hashes)));
            }
            None
        } else {
            // `b"…"`, `c"…"`, or `b'…'`.
            match bytes.get(j) {
                Some(b'"') => Some((RegionKind::Str, self.string_end(j + 1))),
                Some(b'\'') if bytes[i] == b'b' => {
                    self.char_literal_end(j).map(|end| (RegionKind::Char, end))
                }
                _ => None,
            }
        }
    }

    /// End of a raw string body starting at `after`, closed by `"` + `hashes`.
    fn raw_string_end(&self, after: usize, hashes: usize) -> usize {
        let bytes = self.bytes;
        let len = bytes.len();
        let mut i = after;
        while i < len {
            if bytes[i] == b'"' {
                let tail = &bytes[i + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        len
    }

    /// If the `'` at `start` opens a char literal, its end; `None` for
    /// lifetimes and stray quotes (which remain code).
    fn char_literal_end(&self, start: usize) -> Option<usize> {
        let bytes = self.bytes;
        let len = bytes.len();
        let next = *bytes.get(start + 1)?;
        if next == b'\\' {
            // Escaped char: scan for the closing quote, honouring `\\`.
            let mut i = start + 2;
            while i < len {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => return Some(i + 1),
                    b'\n' => return Some(i), // unterminated: stop at newline
                    _ => i += 1,
                }
            }
            return Some(len);
        }
        if next == b'\'' {
            // `''`: not valid Rust; claim both quotes so neither opens
            // a phantom literal.
            return Some(start + 2);
        }
        if next.is_ascii_alphabetic() || next == b'_' {
            // `'a'` is a char; `'a` / `'static` is a lifetime. Scan the
            // identifier run and look for a closing quote.
            let mut i = start + 1;
            while i < len && is_ident_byte(bytes[i]) {
                i += 1;
            }
            if i < len && bytes[i] == b'\'' {
                return Some(i + 1);
            }
            return None; // lifetime
        }
        // Single non-identifier character (`'('`, `'1'`, `'é'`): a char
        // literal iff a quote follows one complete character.
        let ch_len = utf8_len(next);
        let close = start + 1 + ch_len;
        if close < len && bytes[close] == b'\'' {
            // Guard against slicing mid-char on malformed UTF-8 counts.
            if self.src.is_char_boundary(close) {
                return Some(close + 1);
            }
        }
        None
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(RegionKind, &str)> {
        lex(src)
            .into_iter()
            .map(|r| (r.kind, &src[r.start..r.end]))
            .collect()
    }

    #[test]
    fn tiles_plain_code() {
        let src = "fn main() {}";
        assert_eq!(kinds(src), vec![(RegionKind::Code, src)]);
    }

    #[test]
    fn classifies_comment_flavours() {
        let src = "//! inner\n/// outer\n//// plain\n// plain\n/* b */ /** d */ x";
        let got = kinds(src);
        let comment_kinds: Vec<RegionKind> = got
            .iter()
            .filter(|(k, _)| k.is_comment())
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(
            comment_kinds,
            vec![
                RegionKind::DocComment,
                RegionKind::DocComment,
                RegionKind::LineComment,
                RegionKind::LineComment,
                RegionKind::BlockComment,
                RegionKind::DocComment,
            ]
        );
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let src = "a /* x /* y */ z */ b";
        assert_eq!(
            kinds(src),
            vec![
                (RegionKind::Code, "a "),
                (RegionKind::BlockComment, "/* x /* y */ z */"),
                (RegionKind::Code, " b"),
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_raw_strings() {
        let src = r####"let a = "q\"/*"; let b = r#"//"#; let c = b"x";"####;
        let got = kinds(src);
        assert_eq!(got[1], (RegionKind::Str, r#""q\"/*""#));
        assert_eq!(got[3], (RegionKind::RawStr, r###"r#"//"#"###));
        assert_eq!(got[5], (RegionKind::Str, r#"b"x""#));
    }

    #[test]
    fn lifetimes_stay_code_chars_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let d = '\\n'; let e = b'z'; }";
        let got = kinds(src);
        let chars: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == RegionKind::Char)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(chars, vec!["'y'", "'\\n'", "b'z'"]);
    }

    #[test]
    fn quote_char_literal_is_not_a_string_opener() {
        // `'"'` must consume the double quote as a char, or the rest of the
        // file would be misread as a string body.
        let src = "let q = '\"'; let x = 1;";
        let got = kinds(src);
        assert_eq!(got[1], (RegionKind::Char, "'\"'"));
        assert_eq!(got[2], (RegionKind::Code, "; let x = 1;"));
    }

    #[test]
    fn unterminated_literals_extend_to_eof() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'\\x4"] {
            let regions = lex(src);
            assert_eq!(regions.last().unwrap().end, src.len(), "src = {src:?}");
        }
    }

    #[test]
    fn multibyte_char_literal_and_identifier() {
        let src = "let é = 'é'; // déjà vu";
        let regions = lex(src);
        for r in &regions {
            assert!(src.is_char_boundary(r.start) && src.is_char_boundary(r.end));
        }
        assert!(regions
            .iter()
            .any(|r| r.kind == RegionKind::Char && &src[r.start..r.end] == "'é'"));
    }

    #[test]
    fn code_mask_marks_only_code() {
        let src = "x // HashMap\ny";
        let regions = lex(src);
        let mask = code_mask(src, &regions);
        assert!(mask[0]); // x
        let comment_at = src.find("//").unwrap();
        assert!(!mask[comment_at + 3]);
        assert!(mask[src.len() - 1]); // y
    }
}
