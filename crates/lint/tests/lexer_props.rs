//! Properties of the region lexer: it is total (never panics), it tiles
//! the input exactly, and the code mask it induces is what keeps rules
//! from firing inside strings and comments.

use proptest::prelude::*;

use ssdx_lint::lexer::lex;
use ssdx_lint::{lint_source, registry};

/// Characters weighted toward lexer-significant syntax: quotes, escapes,
/// comment openers/closers, raw-string guards and prefixes, newlines, and
/// some multi-byte fillers so char-boundary handling is exercised.
const SOURCE_PALETTE: &[char] = &[
    '"', '\'', '/', '*', '\\', '#', 'r', 'b', 'c', '!', '\n', ' ', 'x', 'A', '0', '_', ':', ';',
    '{', '}', '(', ')', 'é', '→',
];

fn arbitrary_source() -> BoxedStrategy<String> {
    prop::collection::vec(any::<u8>(), 0..240)
        .prop_map(|bytes| {
            bytes
                .iter()
                .map(|&b| SOURCE_PALETTE[b as usize % SOURCE_PALETTE.len()])
                .collect()
        })
        .boxed()
}

/// Payload characters that cannot terminate the surrounding string or
/// comment context they get wrapped in (no quotes, escapes, newlines,
/// `*`/`/` pairs, or raw-string `#` guards).
const PAYLOAD_PALETTE: &[char] = &[
    'H', 'a', 's', 'h', 'M', 'p', 'I', 'n', 't', 'd', 'e', ' ', '_', 'x', '0', ':', ';', '!',
];

fn payload() -> BoxedStrategy<String> {
    prop::collection::vec(any::<u8>(), 0..60)
        .prop_map(|bytes| {
            bytes
                .iter()
                .map(|&b| PAYLOAD_PALETTE[b as usize % PAYLOAD_PALETTE.len()])
                .collect()
        })
        .boxed()
}

/// A token every rule would flag if it appeared in code position.
fn hot_token() -> BoxedStrategy<&'static str> {
    prop::sample::select(vec![
        "HashMap",
        "HashSet",
        "Instant",
        "SystemTime",
        "unsafe",
        "thread::spawn",
        "RandomState",
        "thread_rng",
        "println!",
        "dbg!",
    ])
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer is total and its regions tile `[0, len)` exactly, in
    /// order, with every boundary on a char boundary. This is the
    /// foundation the code mask (and so every rule) stands on.
    #[test]
    fn lexer_tiles_arbitrary_input_exactly(src in arbitrary_source()) {
        let regions = lex(&src);
        let mut cursor = 0usize;
        for r in &regions {
            prop_assert_eq!(r.start, cursor, "regions must be contiguous");
            prop_assert!(r.end > r.start, "regions must be non-empty");
            prop_assert!(src.is_char_boundary(r.start));
            prop_assert!(src.is_char_boundary(r.end));
            cursor = r.end;
        }
        prop_assert_eq!(cursor, src.len(), "regions must cover the input");
    }

    /// The full pipeline — lex, scope, rules, suppression audit,
    /// diagnostics with line/col/snippets — never panics on arbitrary
    /// input, in or out of scope.
    #[test]
    fn full_lint_pass_is_total(src in arbitrary_source()) {
        let rules = registry();
        let _ = lint_source("crates/core/src/probe.rs", &src, &rules);
        let _ = lint_source("examples/probe.rs", &src, &rules);
    }

    /// Masking: a token every rule hunts for produces zero findings when
    /// it only ever appears inside comments, doc comments, strings, or
    /// raw strings — and does fire from code position in the same file.
    #[test]
    fn rules_only_fire_in_code_regions(
        token in hot_token(),
        pre in payload(),
        post in payload(),
        ctx in 0usize..5,
    ) {
        let inner = format!("{pre}{token}{post}");
        let masked = match ctx {
            0 => format!("// {inner}\nfn f() {{}}\n"),
            1 => format!("//! {inner}\nfn f() {{}}\n"),
            2 => format!("/* {inner} */ fn f() {{}}\n"),
            3 => format!("fn f() {{ let _s = \"{inner}\"; }}\n"),
            _ => format!("fn f() {{ let _s = r#\"{inner}\"#; }}\n"),
        };
        let rules = registry();
        let quiet = lint_source("crates/core/src/probe.rs", &masked, &rules);
        prop_assert!(
            quiet.is_empty(),
            "token {} wrapped in context {} still fired: {:?}",
            token,
            ctx,
            quiet.iter().map(|d| d.rule).collect::<Vec<_>>()
        );

        let live = format!("{token}\n// {inner}\n");
        let heard = lint_source("crates/core/src/probe.rs", &live, &rules);
        prop_assert!(
            heard.iter().any(|d| d.line == 1),
            "token {} in code position was not flagged",
            token
        );
    }
}
