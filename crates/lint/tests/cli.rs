//! Integration tests for the `ssdx-lint` binary: exact output pins for
//! `--list`, the text and `--json` report shapes, per-file args, the
//! `--update-api` workflow, exit codes 0/1/2, and byte-identical reports
//! across runs.
//!
//! Synthetic workspaces are built under the OS temp dir (one per test, so
//! parallel tests never collide) at paths the analyses skip: the layer
//! and API tables match on crate directories, so a `crates/demo` member
//! exercises the rule engine without tripping the workspace-level checks.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use ssdx_lint::{spec, ANALYSES, RULES};

const BIN: &str = env!("CARGO_BIN_EXE_ssdx-lint");

/// A scratch workspace that removes itself on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("ssdx-lint-cli-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("temp workspace dir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
        TempWs { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("dirs");
        fs::write(path, text).expect("write source");
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn ssdx-lint")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn list_prints_rules_then_analyses_exactly() {
    let ws = TempWs::new("list");
    let out = run_in(&ws.root, &["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let mut expected = String::new();
    for rule in RULES {
        let _ = writeln!(expected, "{:<34} {}", rule.name, rule.contract);
    }
    for analysis in ANALYSES {
        let _ = writeln!(expected, "{:<34} {}", analysis.name, analysis.contract);
    }
    assert_eq!(stdout_of(&out), expected);
}

#[test]
fn clean_workspace_exits_zero_with_pinned_summary() {
    let ws = TempWs::new("clean");
    ws.write("crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let out = run_in(&ws.root, &["--workspace"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    assert_eq!(stdout_of(&out), "ssdx-lint: clean (1 files scanned)\n");
}

#[test]
fn json_report_shape_is_pinned() {
    let ws = TempWs::new("json");
    ws.write("crates/demo/src/lib.rs", "use std::collections::HashMap;\n");
    let out = run_in(&ws.root, &["--workspace", "--json"]);
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    let contract = spec("no-default-hasher").expect("registered").contract;
    let expected = format!(
        "{{\"version\":1,\"files_scanned\":1,\"count\":1,\"findings\":[\
         {{\"rule\":\"no-default-hasher\",\"path\":\"crates/demo/src/lib.rs\",\
         \"line\":1,\"col\":23,\"message\":\"`HashMap` violates: {contract}\",\
         \"snippet\":\"use std::collections::HashMap;\"}}]}}\n"
    );
    assert_eq!(stdout_of(&out), expected);
}

#[test]
fn per_file_args_lint_only_the_named_files() {
    let ws = TempWs::new("perfile");
    ws.write("crates/demo/src/bad.rs", "use std::collections::HashMap;\n");
    ws.write("crates/demo/src/good.rs", "pub fn ok() {}\n");
    // Only the clean file: exit 0, one file scanned.
    let out = run_in(&ws.root, &["crates/demo/src/good.rs"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout_of(&out), "ssdx-lint: clean (1 files scanned)\n");
    // The offending file: exit 1 and a rustc-style rendering.
    let out = run_in(&ws.root, &["crates/demo/src/bad.rs"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout_of(&out);
    assert!(text.starts_with("error[no-default-hasher]:"), "got: {text}");
    assert!(text.contains("--> crates/demo/src/bad.rs:1:23"));
    assert!(text.contains("ssdx-lint: 1 finding across 1 files scanned"));
}

#[test]
fn usage_and_io_errors_exit_two() {
    let ws = TempWs::new("exit2");
    let unknown = run_in(&ws.root, &["--no-such-flag"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown flag"));
    let missing = run_in(&ws.root, &["crates/demo/src/nope.rs"]);
    assert_eq!(missing.status.code(), Some(2));
}

#[test]
fn update_api_pins_and_clears_api_drift() {
    let ws = TempWs::new("updapi");
    // `src/` is the root facade's API-tracked tree, so this synthetic
    // surface exercises the full drift cycle.
    ws.write(
        "src/lib.rs",
        "//! demo\npub fn surface() -> u32 {\n    7\n}\n",
    );
    let before = run_in(&ws.root, &["--workspace"]);
    assert_eq!(before.status.code(), Some(1), "missing snapshot must fail");
    assert!(stdout_of(&before).contains("error[api-drift]"));

    let update = run_in(&ws.root, &["--update-api"]);
    assert_eq!(update.status.code(), Some(0));
    assert_eq!(stdout_of(&update), "ssdexplorer.api: updated\n");
    let snapshot = fs::read_to_string(ws.root.join("crates/lint/api/ssdexplorer.api"))
        .expect("snapshot written");
    assert!(snapshot.contains("fn surface() -> u32"));

    let clean = run_in(&ws.root, &["--workspace"]);
    assert_eq!(clean.status.code(), Some(0), "got: {}", stdout_of(&clean));

    // Re-running the regeneration is a no-op.
    let again = run_in(&ws.root, &["--update-api"]);
    assert_eq!(stdout_of(&again), "ssdexplorer.api: unchanged\n");

    // Drift: change the surface, the pinned snapshot now fails.
    ws.write(
        "src/lib.rs",
        "//! demo\npub fn surface() -> u64 {\n    7\n}\n",
    );
    let drifted = run_in(&ws.root, &["--workspace"]);
    assert_eq!(drifted.status.code(), Some(1));
    let text = stdout_of(&drifted);
    assert!(text.contains("error[api-drift]"), "got: {text}");
    assert!(text.contains("+ fn surface() -> u64"), "got: {text}");
    assert!(text.contains("- fn surface() -> u32"), "got: {text}");
}

#[test]
fn reports_are_byte_identical_across_runs() {
    // Against the real checkout: two full workspace passes (text and
    // JSON) must produce identical bytes — the determinism contract the
    // linter enforces, applied to itself.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for args in [&["--workspace"][..], &["--workspace", "--json"][..]] {
        let a = run_in(&root, args);
        let b = run_in(&root, args);
        assert_eq!(a.status.code(), b.status.code());
        assert_eq!(a.stdout, b.stdout, "run-to-run drift with {args:?}");
    }
}
