//! ui-style fixture suite: every rule is proven to fire, and the lexer's
//! masking plus the suppression audit are proven on realistic source.
//!
//! Each file under `tests/fixtures/` is a Rust source that is never
//! compiled — the workspace walker skips the directory (see
//! `ssdx_lint::SKIP_DIRS`) because fixtures violate rules on purpose. A
//! fixture declares the virtual workspace path it pretends to live at
//! (which drives scope matching) and annotates each line expected to
//! produce findings:
//!
//! ```text
//! //@ path: crates/core/src/fixture.rs
//! use std::collections::Hash...;  #[expectation marker] ERROR rule-name
//! ```
//!
//! (The marker is spelled `//~ ERROR` in fixtures; several rule names may
//! follow, separated by spaces, when one line trips several rules.)
//! Expectations are compared as a set of `(line, rule)` pairs — both
//! missing and surplus findings fail the suite.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use ssdx_lint::{lint_source, registry, RULES};

const MARKER: &str = "//~ ERROR";

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn is_rule_token(tok: &str) -> bool {
    !tok.is_empty()
        && tok
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Parse `(line, rule)` expectations out of a fixture's text.
fn expectations(text: &str) -> BTreeSet<(usize, String)> {
    let mut expected = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(pos) = line.find(MARKER) else {
            continue;
        };
        for tok in line[pos + MARKER.len()..].split_whitespace() {
            if !is_rule_token(tok) {
                break;
            }
            expected.insert((idx + 1, tok.to_string()));
        }
    }
    expected
}

fn run_fixture(name: &str) -> BTreeSet<(usize, String)> {
    let path = fixture_dir().join(name);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let vpath = text
        .lines()
        .find_map(|l| l.strip_prefix("//@ path: "))
        .unwrap_or_else(|| panic!("fixture {name} must declare `//@ path: <virtual path>`"))
        .trim()
        .to_string();
    let expected = expectations(&text);
    let rules = registry();
    let actual: BTreeSet<(usize, String)> = lint_source(&vpath, &text, &rules)
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    assert_eq!(
        actual, expected,
        "fixture {name} (as {vpath}): findings differ from `{MARKER}` expectations"
    );
    expected
}

#[test]
fn no_default_hasher_fires() {
    assert!(!run_fixture("no_default_hasher.rs").is_empty());
}

#[test]
fn no_wall_clock_fires() {
    assert!(!run_fixture("no_wall_clock.rs").is_empty());
}

#[test]
fn unsafe_outside_alloctrack_fires() {
    assert!(!run_fixture("unsafe_outside_alloctrack.rs").is_empty());
}

#[test]
fn no_thread_spawn_fires() {
    assert!(!run_fixture("no_thread_spawn.rs").is_empty());
}

#[test]
fn no_ambient_randomness_fires() {
    assert!(!run_fixture("no_ambient_randomness.rs").is_empty());
}

#[test]
fn no_print_in_lib_fires() {
    assert!(!run_fixture("no_print_in_lib.rs").is_empty());
}

#[test]
fn no_panic_in_hot_path_fires() {
    assert!(!run_fixture("no_panic_in_hot_path.rs").is_empty());
}

#[test]
fn panic_scope_stops_at_hot_path_modules() {
    // Same panic forms, a non-hot-path file: the scope table says clean.
    assert!(run_fixture("panic_allowed_outside_hot_path.rs").is_empty());
}

#[test]
fn print_scope_stops_at_library_sources() {
    // Same macros, examples/ path: the scope table says clean.
    assert!(run_fixture("print_allowed_outside_lib.rs").is_empty());
}

#[test]
fn suppression_audit_behaviours() {
    let expected = run_fixture("suppression.rs");
    let rules_seen: BTreeSet<&str> = expected.iter().map(|(_, r)| r.as_str()).collect();
    // The fixture must exercise all three audit diagnostics.
    for meta in [
        ssdx_lint::meta::BARE_SUPPRESSION,
        ssdx_lint::meta::UNKNOWN_RULE,
        ssdx_lint::meta::UNUSED_SUPPRESSION,
    ] {
        assert!(
            rules_seen.contains(meta),
            "suppression.rs must cover {meta}"
        );
    }
}

/// The acceptance bar: every rule in the registry is proven to fire by at
/// least one fixture expectation. A rule added to the table without a
/// fixture fails here, not in review.
#[test]
fn every_registered_rule_has_a_firing_fixture() {
    let mut fired: BTreeSet<String> = BTreeSet::new();
    for entry in fs::read_dir(fixture_dir()).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&path).expect("fixture readable");
            fired.extend(expectations(&text).into_iter().map(|(_, r)| r));
        }
    }
    for spec in RULES {
        assert!(
            fired.contains(spec.name),
            "rule `{}` has no fixture proving it fires; add one under tests/fixtures/",
            spec.name
        );
    }
}
