//! Fixture tests for the cross-file analyses: an intentionally introduced
//! layer violation, an unused declared dependency, and a drifted API
//! snapshot must each fail `lint_workspace` over a synthetic tree, and
//! the `update_api_snapshots` cycle must clear the drift.

use std::fs;
use std::path::PathBuf;

use ssdx_lint::{lint_workspace, update_api_snapshots, Diagnostic};

/// A scratch workspace that removes itself on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("ssdx-lint-analysis-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("temp workspace dir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
        TempWs { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("dirs");
        fs::write(path, text).expect("write file");
    }

    fn lint(&self) -> Vec<Diagnostic> {
        lint_workspace(&self.root).expect("lint pass").diagnostics
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn of_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

/// Pin the sim crate's snapshot so api-drift findings do not distract the
/// layering assertions (sim is an API-tracked crate).
fn pin_api(ws: &TempWs) {
    update_api_snapshots(&ws.root).expect("snapshot regeneration");
}

#[test]
fn upward_manifest_edge_is_a_layer_violation() {
    let ws = TempWs::new("upward");
    // ssdx-sim (kernel) depending on ssdx-core (platform) inverts the
    // layering — both the manifest edge and the in-code path must fire.
    ws.write(
        "crates/sim/Cargo.toml",
        "[package]\nname = \"ssdx-sim\"\n\n[dependencies]\nssdx-core = { path = \"../core\" }\n",
    );
    ws.write(
        "crates/sim/src/lib.rs",
        "//! fixture\nuse ssdx_core::config::SsdConfig;\n\npub fn probe() -> u32 {\n    0\n}\n",
    );
    pin_api(&ws);
    let diags = ws.lint();
    let hits = of_rule(&diags, "layer-violation");
    let manifest_hit = hits
        .iter()
        .find(|d| d.path == "crates/sim/Cargo.toml")
        .expect("manifest edge flagged");
    assert_eq!(manifest_hit.line, 5, "points at the dependency line");
    assert!(manifest_hit.message.contains("`ssdx-sim` (kernel)"));
    assert!(manifest_hit.message.contains("`ssdx-core` (platform)"));
    assert!(
        hits.iter().any(|d| d.path == "crates/sim/src/lib.rs"),
        "in-code upward reference flagged: {hits:?}"
    );
}

#[test]
fn sibling_substrate_edge_outside_the_exception_table_fires() {
    let ws = TempWs::new("sibling");
    // nand -> channel is the reverse of the audited channel -> nand edge.
    ws.write(
        "crates/nand/Cargo.toml",
        "[package]\nname = \"ssdx-nand\"\n\n[dependencies]\nssdx-channel.workspace = true\n",
    );
    ws.write(
        "crates/nand/src/lib.rs",
        "//! fixture\npub fn probe() -> ssdx_channel::Marker {\n    ssdx_channel::Marker\n}\n",
    );
    pin_api(&ws);
    let diags = ws.lint();
    let hits = of_rule(&diags, "layer-violation");
    assert!(
        hits.iter().any(|d| d.path == "crates/nand/Cargo.toml"),
        "sibling edge must fire: {hits:?}"
    );
}

#[test]
fn the_audited_channel_to_nand_edge_is_allowed() {
    let ws = TempWs::new("exception");
    ws.write(
        "crates/channel/Cargo.toml",
        "[package]\nname = \"ssdx-channel\"\n\n[dependencies]\nssdx-nand.workspace = true\n",
    );
    ws.write(
        "crates/channel/src/lib.rs",
        "//! fixture\npub use ssdx_nand::NandOp;\n",
    );
    pin_api(&ws);
    let diags = ws.lint();
    assert!(
        of_rule(&diags, "layer-violation").is_empty(),
        "the exception-table edge is clean: {diags:?}"
    );
}

#[test]
fn declared_but_unused_dependency_fires() {
    let ws = TempWs::new("unused");
    ws.write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"ssdx-core\"\n\n[dependencies]\nssdx-sim.workspace = true\n\
         ssdx-nand.workspace = true\n",
    );
    // Only ssdx_sim is referenced; ssdx-nand is a stale declaration.
    ws.write(
        "crates/core/src/lib.rs",
        "//! fixture\npub use ssdx_sim::SimTime;\n",
    );
    pin_api(&ws);
    let diags = ws.lint();
    let hits = of_rule(&diags, "layer-violation");
    assert_eq!(hits.len(), 1, "exactly the unused edge: {hits:?}");
    assert!(hits[0].message.contains("declares `ssdx-nand`"));
    assert!(hits[0].message.contains("no source"));
}

#[test]
fn api_drift_fires_and_update_api_clears_it() {
    let ws = TempWs::new("drift");
    ws.write(
        "crates/sim/src/lib.rs",
        "//! fixture\npub fn quantile(q: f64) -> u64 {\n    q as u64\n}\n",
    );
    // No snapshot yet: missing-snapshot finding.
    let missing = ws.lint();
    let hits = of_rule(&missing, "api-drift");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("no committed API snapshot"));

    // Pin, then the tree is clean.
    let written = update_api_snapshots(&ws.root).expect("regeneration");
    assert_eq!(written, vec![("ssdx-sim".to_string(), true)]);
    assert!(of_rule(&ws.lint(), "api-drift").is_empty());

    // Change the public surface: drift, with a diff-style message.
    ws.write(
        "crates/sim/src/lib.rs",
        "//! fixture\npub fn quantile(q: f64, n: u64) -> u64 {\n    q as u64 + n\n}\n",
    );
    let drifted = ws.lint();
    let hits = of_rule(&drifted, "api-drift");
    assert_eq!(hits.len(), 1);
    assert!(hits[0]
        .message
        .contains("+ fn quantile(q: f64, n: u64) -> u64"));
    assert!(hits[0].message.contains("- fn quantile(q: f64) -> u64"));

    // A second regeneration reports the change, and a third is a no-op.
    assert_eq!(
        update_api_snapshots(&ws.root).expect("regeneration"),
        vec![("ssdx-sim".to_string(), true)]
    );
    assert_eq!(
        update_api_snapshots(&ws.root).expect("regeneration"),
        vec![("ssdx-sim".to_string(), false)]
    );
}

#[test]
fn stale_snapshots_are_flagged() {
    let ws = TempWs::new("stale");
    ws.write("crates/sim/src/lib.rs", "//! fixture\npub fn f() {}\n");
    pin_api(&ws);
    ws.write("crates/lint/api/ssdx-gone.api", "# orphan\nfn g()\n");
    let diags = ws.lint();
    let hits = of_rule(&diags, "api-drift");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("stale snapshot `ssdx-gone.api`"));
}
