//@ path: crates/dram/src/fixture.rs
//! Fixture: print macros are flagged in library sources.

fn flagged() {
    println!("refresh complete"); //~ ERROR no-print-in-lib
    eprintln!("bank conflict"); //~ ERROR no-print-in-lib
    print!("partial"); //~ ERROR no-print-in-lib
    eprint!("partial"); //~ ERROR no-print-in-lib
    let x = dbg!(42); //~ ERROR no-print-in-lib
}

fn fine() {
    // A string mentioning println! is data; returning strings is the
    // sanctioned way for a library to produce output.
    let rendered = format!("table: {}", 42);
}
