//@ path: crates/hostif/src/fixture.rs
//! Fixture: ambient threading is flagged outside the parallel executor.

use std::thread; //~ ERROR no-thread-spawn-outside-parallel

fn flagged() {
    let h = thread::spawn(|| 42); //~ ERROR no-thread-spawn-outside-parallel
    let n = std::thread::available_parallelism(); //~ ERROR no-thread-spawn-outside-parallel
    thread::scope(|_| {}); //~ ERROR no-thread-spawn-outside-parallel
}

fn fine() {
    // Deterministic fan-out goes through ssdx_core::parallel, which owns
    // the one sanctioned thread pool.
}
