//@ path: crates/ftl/src/fixture.rs
//! Fixture: `unsafe` and lint re-enables are flagged outside alloctrack.
//! The workspace-level `forbid(unsafe_code)` already rejects most of this
//! at compile time; the rule exists for what rustc cannot see — attributes
//! assembled in macros, or a crate quietly dropping lint inheritance.

#![allow(unsafe_code)] //~ ERROR unsafe-outside-alloctrack

fn flagged(p: *const u8) -> u8 {
    unsafe { *p } //~ ERROR unsafe-outside-alloctrack
}

fn fine() {
    // The word unsafe in prose is fine, as is "unsafe in a string".
}
