//@ path: crates/channel/src/fixture.rs
//! Fixture: the audited inline-allow mechanism, all four behaviours.

// A standalone allow with a reason suppresses the next code line, even
// across a multi-line justification comment like this one.
// ssdx-lint::allow(no-default-hasher): fixture demonstrating a justified
// standalone suppression
use std::collections::HashMap;

use std::collections::HashSet; // ssdx-lint::allow(no-default-hasher): trailing form

// ssdx-lint::allow(no-default-hasher) //~ ERROR bare-suppression
use std::collections::HashMap as Bare; //~ ERROR no-default-hasher

fn flagged() {
    let t = std::time::Instant::now(); // ssdx-lint::allow(no-such-rule): typo'd rule name //~ ERROR no-wall-clock unknown-rule-in-allow
}

// ssdx-lint::allow(no-wall-clock): nothing below reads the clock //~ ERROR unused-suppression
fn stale() {}
