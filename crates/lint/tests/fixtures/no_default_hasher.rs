//@ path: crates/core/src/fixture.rs
//! Fixture: entropy-seeded std maps are flagged in simulation code.
//! (This file is never compiled; it is input data for the fixture suite.)

use std::collections::HashMap; //~ ERROR no-default-hasher
use std::collections::HashSet; //~ ERROR no-default-hasher
use ssdx_sim::hash::FastHashMap;

fn flagged() {
    let m: HashMap<u64, u64> = HashMap::new(); //~ ERROR no-default-hasher
    let s: HashSet<u64> = HashSet::default(); //~ ERROR no-default-hasher
}

fn fine() {
    // Prose naming std::collections::HashMap is not a violation, and the
    // fixed-key map is the whole point:
    let wear: FastHashMap<u64, u32> = FastHashMap::default();
    let ordered = std::collections::BTreeMap::<u64, u64>::new();
    let as_data = "HashMap and HashSet in a string are data, not code";
}
