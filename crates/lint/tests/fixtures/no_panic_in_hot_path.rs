//@ path: crates/core/src/session.rs
//! Fixture: every denied panic form fires in a hot-path module, the
//! audited allow suppresses, and `#[cfg(test)]` code is exempt.

fn step(queue: &mut Vec<u32>, map: &std::collections::BTreeMap<u32, u32>) -> u32 {
    let head = queue.pop().unwrap(); //~ ERROR no-panic-in-hot-path
    let slot = map.get(&head).expect("slot must exist"); //~ ERROR no-panic-in-hot-path
    if *slot > 100 {
        panic!("slot overflow"); //~ ERROR no-panic-in-hot-path
    }
    match head {
        0 => unreachable!("queue never holds zero"), //~ ERROR no-panic-in-hot-path
        1 => todo!(), //~ ERROR no-panic-in-hot-path
        _ => *slot,
    }
}

fn guarded(slots: &mut [Option<u32>], key: usize) -> u32 {
    // ssdx-lint::allow(no-panic-in-hot-path): heap keys always point at
    // occupied slots; a miss means the arena is corrupt and stopping is
    // the only sound response.
    slots[key].take().expect("occupied slot")
}

// Method-position matches count too: `unwrap_or` and `expected` must NOT
// fire (word boundaries), and prose in strings stays silent.
fn boundaries(v: Option<u32>) -> u32 {
    let _prose = "call unwrap() and expect() as data";
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    // Test code asserts freely: the contract binds production code only.
    #[test]
    fn asserts_with_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, ()> = Ok(4);
        assert_eq!(r.expect("ok"), 4);
    }
}
