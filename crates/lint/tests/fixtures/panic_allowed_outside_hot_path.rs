//@ path: crates/core/src/report.rs
//! Fixture: the same panic forms outside the designated hot-path modules
//! produce no findings — the scope table is file-precise.

fn render(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn must(v: Option<u32>) -> u32 {
    v.expect("present")
}

fn never() -> ! {
    unreachable!("cold path may assert")
}
