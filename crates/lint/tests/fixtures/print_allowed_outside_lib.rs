//@ path: examples/fixture.rs
//! Fixture: the `no-print-in-lib` scope table stops at library sources —
//! the same macros are fine in examples (and tests/, and crates/bench).
//! No expectations in this file: the suite asserts a clean pass.

fn main() {
    println!("examples are the user-facing surface");
    eprintln!("and may use stderr too");
}
