//@ path: crates/nand/src/fixture.rs
//! Fixture: wall-clock reads are flagged outside the speed harness.

use std::time::Instant; //~ ERROR no-wall-clock
use std::time::SystemTime; //~ ERROR no-wall-clock

fn flagged() {
    let t0 = Instant::now(); //~ ERROR no-wall-clock
    let epoch = SystemTime::UNIX_EPOCH; //~ ERROR no-wall-clock
}

fn fine() {
    // Simulated time and durations are not wall-clock reads.
    let dt = std::time::Duration::from_micros(25);
    // Mentioning Instant in a comment or "Instant in a string" is prose.
}
