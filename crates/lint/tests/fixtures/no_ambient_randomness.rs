//@ path: crates/ecc/src/fixture.rs
//! Fixture: ambient entropy sources are flagged everywhere.

use std::collections::hash_map::RandomState; //~ ERROR no-ambient-randomness
use std::collections::hash_map::DefaultHasher; //~ ERROR no-ambient-randomness

fn flagged() {
    let s = RandomState::new(); //~ ERROR no-ambient-randomness
    let r = thread_rng(); //~ ERROR no-ambient-randomness
}

fn fine() {
    // All randomness flows from a seeded SimRng; the call sites receive
    // it (or a value derived from the config seed) explicitly.
}
