//! Properties of the item/`use` parser: it is total (never panics on
//! arbitrary token soup), and every seeded `pub` item injected into
//! generated source is recovered in the extracted surface — while decoys
//! (private items, `#[cfg(test)]` code, comments, strings) are not.

use proptest::prelude::*;

use ssdx_lint::parse_file;

/// Token fragments weighted toward parser-significant syntax: item
/// keywords, visibility, attributes, delimiters at every nesting level,
/// generics/arrows, literals, comments, and multi-byte fillers.
const TOKEN_PALETTE: &[&str] = &[
    "pub",
    "fn",
    "struct",
    "enum",
    "trait",
    "impl",
    "for",
    "use",
    "mod",
    "const",
    "static",
    "type",
    "unsafe",
    "extern",
    "crate",
    "macro_rules",
    "as",
    "self",
    "where",
    "#",
    "!",
    "[",
    "]",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    "->",
    "::",
    ":",
    ";",
    ",",
    "=",
    "*",
    "&",
    "'a",
    "x",
    "Seed",
    "ssdx_sim",
    "0",
    "\"lit\"",
    "'c'",
    "// line\n",
    "/* block */",
    "/// doc\n",
    "\n",
    "é",
    "→",
];

fn arbitrary_tokens() -> BoxedStrategy<String> {
    prop::collection::vec(any::<u16>(), 0..160)
        .prop_map(|picks| {
            let mut out = String::new();
            for (k, pick) in picks.iter().enumerate() {
                out.push_str(TOKEN_PALETTE[*pick as usize % TOKEN_PALETTE.len()]);
                // Vary adjacency so tokens sometimes fuse (`pubfn`) and
                // sometimes separate — both must stay total.
                if k % 3 != 0 {
                    out.push(' ');
                }
            }
            out
        })
        .boxed()
}

/// One seeded public item plus the decoy that rides along with it.
#[derive(Debug, Clone, Copy)]
struct SeedSpec {
    kind: u8,
    decoy: u8,
}

fn seeds() -> BoxedStrategy<Vec<SeedSpec>> {
    prop::collection::vec(
        (0u8..6, 0u8..4).prop_map(|(kind, decoy)| SeedSpec { kind, decoy }),
        1..10,
    )
    .boxed()
}

/// Render the seeded item; its name is derived from the index so every
/// seed in one case is unique.
fn render_seed(i: usize, kind: u8) -> (String, String) {
    match kind {
        0 => (
            format!("seed_fn_{i}"),
            format!("pub fn seed_fn_{i}(x: u64) -> u64 {{ x + 1 }}\n"),
        ),
        1 => (
            format!("SeedStruct{i}"),
            format!("pub struct SeedStruct{i} {{\n    pub field: u32,\n    hidden: u8,\n}}\n"),
        ),
        2 => (
            format!("SEED_CONST_{i}"),
            format!("pub const SEED_CONST_{i}: u32 = {i};\n"),
        ),
        3 => (
            format!("SeedEnum{i}"),
            format!("pub enum SeedEnum{i} {{ A, B(u32) }}\n"),
        ),
        4 => (
            format!("SeedTrait{i}"),
            format!("pub trait SeedTrait{i} {{\n    fn probe(&self) -> bool;\n}}\n"),
        ),
        _ => (
            format!("SeedAlias{i}"),
            format!("pub type SeedAlias{i} = Vec<u8>;\n"),
        ),
    }
}

/// Render a decoy that must NOT appear in the extracted surface.
fn render_decoy(i: usize, decoy: u8) -> (String, String) {
    let name = format!("ghost_{i}");
    let text = match decoy {
        0 => format!("fn {name}() {{ let _ = {i}; }}\n"),
        1 => format!("#[cfg(test)]\nmod ghosts_{i} {{\n    pub fn {name}() {{}}\n}}\n"),
        2 => format!("// pub fn {name}() is only prose\n"),
        _ => format!("const GHOST_STR_{i}: &str = \"pub fn {name}()\";\n"),
    };
    (name, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// The parser is total: arbitrary (usually invalid) token soup never
    /// panics, and every extracted offset lands inside the input.
    #[test]
    fn parser_is_total_on_arbitrary_input(src in arbitrary_tokens()) {
        let parsed = parse_file(&src);
        for item in &parsed.pub_items {
            prop_assert!(item.offset <= src.len());
        }
        for (s, e) in &parsed.test_spans {
            prop_assert!(s <= e && *e <= src.len());
        }
        for u in &parsed.uses {
            prop_assert!(u.offset <= src.len());
            prop_assert!(!u.path.is_empty());
        }
    }

    /// Recovery: every seeded pub item is present in the extracted
    /// surface (by name, word-exact), and no decoy leaks in.
    #[test]
    fn seeded_pub_items_are_recovered(specs in seeds()) {
        let mut src = String::from("//! seeded module\n");
        let mut expected = Vec::new();
        let mut ghosts = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let (ghost, decoy_text) = render_decoy(i, spec.decoy);
            src.push_str(&decoy_text);
            let (name, item_text) = render_seed(i, spec.kind);
            src.push_str(&item_text);
            expected.push(name);
            ghosts.push(ghost);
        }
        let parsed = parse_file(&src);
        let surface = parsed
            .pub_items
            .iter()
            .map(|it| it.entry.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        for name in &expected {
            prop_assert!(
                surface.contains(name.as_str()),
                "seeded `{}` missing from surface:\n{}\n--- source ---\n{}",
                name,
                surface,
                src
            );
        }
        for ghost in &ghosts {
            prop_assert!(
                !surface.contains(ghost.as_str()),
                "decoy `{}` leaked into surface:\n{}",
                ghost,
                surface
            );
        }
    }
}
