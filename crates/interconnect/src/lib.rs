//! AMBA AHB 2.0 system-interconnect model.
//!
//! SSDExplorer keeps the system interconnect at RTL-equivalent accuracy
//! because arbitration, burst formation and wait states directly shape the
//! internal transfer rates of the SSD. This crate models an AMBA AHB v2.0
//! bus with 16 master and 16 slave ports, a round-robin arbiter, INCR burst
//! transfers and split-transaction support (modelled as re-arbitration
//! instead of bus stalling), plus the Multi-Layer AHB variant the paper
//! mentions as a possible evolution.
//!
//! # Example
//!
//! ```
//! use ssdx_interconnect::{AhbBus, AhbConfig};
//! use ssdx_sim::SimTime;
//!
//! let mut bus = AhbBus::new(AhbConfig::default());
//! let xfer = bus.transfer(SimTime::ZERO, 0, 1, 4096);
//! assert!(xfer.end > xfer.start);
//! ```

#![warn(rust_2018_idioms)]

pub mod ahb;
pub mod multilayer;

pub use ahb::{AhbBus, AhbConfig, AhbError, BurstKind, BusStats, Transfer};
pub use multilayer::MultiLayerAhb;
