//! Single-layer AMBA AHB bus.

use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::{Frequency, Resource, RoundRobinArbiter, SimTime};
use std::fmt;

/// Static configuration of an AHB bus instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AhbConfig {
    /// Bus clock (the paper runs the AHB at the CPU frequency, 200 MHz).
    pub clock: Frequency,
    /// Data bus width in bytes (AHB is 32-bit in the modelled platform).
    pub data_width_bytes: u32,
    /// Number of master ports.
    pub masters: u32,
    /// Number of slave ports.
    pub slaves: u32,
    /// Maximum beats per burst (INCR16).
    pub max_burst_beats: u32,
    /// Default wait states inserted by slaves per data beat.
    pub default_wait_states: u32,
    /// Cycles lost to arbitration when the bus changes owner.
    pub arbitration_cycles: u32,
}

impl AhbConfig {
    /// The configuration used by the paper: AMBA AHB 2.0 at 200 MHz, 32-bit
    /// data, 16 masters and 16 slaves, round-robin arbitration, INCR16 bursts.
    pub fn paper_default() -> Self {
        AhbConfig {
            clock: Frequency::from_mhz(200),
            data_width_bytes: 4,
            masters: 16,
            slaves: 16,
            max_burst_beats: 16,
            default_wait_states: 0,
            arbitration_cycles: 1,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), AhbError> {
        if self.masters == 0 || self.slaves == 0 {
            return Err(AhbError::NoPorts);
        }
        if self.data_width_bytes == 0 || self.max_burst_beats == 0 {
            return Err(AhbError::ZeroDimension);
        }
        Ok(())
    }
}

impl Default for AhbConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors produced by the AHB model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AhbError {
    /// Master or slave port index out of range.
    PortOutOfRange,
    /// Configuration has zero masters or slaves.
    NoPorts,
    /// Configuration has a zero width or burst length.
    ZeroDimension,
}

impl fmt::Display for AhbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AhbError::PortOutOfRange => write!(f, "master or slave port index out of range"),
            AhbError::NoPorts => write!(f, "bus must have at least one master and one slave"),
            AhbError::ZeroDimension => write!(f, "bus width and burst length must be non-zero"),
        }
    }
}

impl std::error::Error for AhbError {}

/// The burst type chosen for (a portion of) a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstKind {
    /// Single beat.
    Single,
    /// 4-beat incrementing burst.
    Incr4,
    /// 8-beat incrementing burst.
    Incr8,
    /// 16-beat incrementing burst.
    Incr16,
}

impl BurstKind {
    /// Number of data beats in this burst kind.
    pub fn beats(self) -> u32 {
        match self {
            BurstKind::Single => 1,
            BurstKind::Incr4 => 4,
            BurstKind::Incr8 => 8,
            BurstKind::Incr16 => 16,
        }
    }

    /// Largest burst kind not exceeding `beats` beats.
    pub fn largest_fitting(beats: u32) -> BurstKind {
        if beats >= 16 {
            BurstKind::Incr16
        } else if beats >= 8 {
            BurstKind::Incr8
        } else if beats >= 4 {
            BurstKind::Incr4
        } else {
            BurstKind::Single
        }
    }
}

/// Timing of one completed bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the first burst of this transfer won arbitration.
    pub start: SimTime,
    /// When the last data beat completed.
    pub end: SimTime,
    /// Number of bursts the transfer was split into.
    pub bursts: u32,
    /// Total number of data beats.
    pub beats: u32,
    /// Bus-clock cycles spent (arbitration + address + data + wait states).
    pub cycles: u64,
}

/// Per-master accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Transfers completed.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total time spent owning the bus.
    pub ownership: SimTime,
}

/// A single-layer AHB bus shared by all masters and slaves.
#[derive(Debug, Clone)]
pub struct AhbBus {
    config: AhbConfig,
    bus: Resource,
    arbiter: RoundRobinArbiter,
    per_master: Vec<BusStats>,
    slave_wait_states: Vec<u32>,
}

impl AhbBus {
    /// Creates an idle bus.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`AhbConfig::validate`]
    /// to check beforehand.
    pub fn new(config: AhbConfig) -> Self {
        config.validate().expect("invalid AHB configuration");
        AhbBus {
            config,
            bus: Resource::new("ahb"),
            arbiter: RoundRobinArbiter::new(config.masters as usize),
            per_master: vec![BusStats::default(); config.masters as usize],
            slave_wait_states: vec![config.default_wait_states; config.slaves as usize],
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &AhbConfig {
        &self.config
    }

    /// Overrides the wait states of one slave port.
    ///
    /// # Errors
    ///
    /// Returns [`AhbError::PortOutOfRange`] if the slave index is invalid.
    pub fn set_slave_wait_states(&mut self, slave: u32, wait_states: u32) -> Result<(), AhbError> {
        let slot = self
            .slave_wait_states
            .get_mut(slave as usize)
            .ok_or(AhbError::PortOutOfRange)?;
        *slot = wait_states;
        Ok(())
    }

    /// Statistics of one master port.
    ///
    /// # Errors
    ///
    /// Returns [`AhbError::PortOutOfRange`] if the master index is invalid.
    pub fn master_stats(&self, master: u32) -> Result<BusStats, AhbError> {
        self.per_master
            .get(master as usize)
            .copied()
            .ok_or(AhbError::PortOutOfRange)
    }

    /// Earliest instant at which the bus is idle.
    pub fn free_at(&self) -> SimTime {
        self.bus.free_at()
    }

    /// Bus utilization over a simulated horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.bus.utilization(horizon)
    }

    /// Number of cycles a transfer of `bytes` bytes to `slave` occupies,
    /// including arbitration, address phases and wait states.
    pub fn transfer_cycles(&self, slave: u32, bytes: u32) -> u64 {
        let beats_total = bytes.div_ceil(self.config.data_width_bytes).max(1);
        let wait = self
            .slave_wait_states
            .get(slave as usize)
            .copied()
            .unwrap_or(self.config.default_wait_states) as u64;
        let mut remaining = beats_total;
        let mut cycles = 0u64;
        while remaining > 0 {
            let kind = BurstKind::largest_fitting(remaining.min(self.config.max_burst_beats));
            let beats = kind.beats().min(remaining);
            // Arbitration + one address phase per burst; data beats overlap
            // address phases of following beats (pipelined), wait states add
            // per-beat stalls.
            cycles += self.config.arbitration_cycles as u64 + 1 + beats as u64 * (1 + wait);
            remaining -= beats;
        }
        cycles
    }

    /// Performs a transfer of `bytes` bytes from `master` to `slave`,
    /// starting no earlier than `at`. The bus is granted burst by burst but
    /// the whole transfer is accounted as one ownership window (AHB masters
    /// hold the bus for their queued bursts under round-robin fairness).
    ///
    /// # Panics
    ///
    /// Panics if the master or slave index is out of range; use
    /// [`try_transfer`](Self::try_transfer) for a fallible variant.
    pub fn transfer(&mut self, at: SimTime, master: u32, slave: u32, bytes: u32) -> Transfer {
        self.try_transfer(at, master, slave, bytes)
            .expect("master or slave port out of range")
    }

    /// Fallible variant of [`transfer`](Self::transfer).
    ///
    /// # Errors
    ///
    /// Returns [`AhbError::PortOutOfRange`] if `master` or `slave` is not a
    /// valid port index.
    pub fn try_transfer(
        &mut self,
        at: SimTime,
        master: u32,
        slave: u32,
        bytes: u32,
    ) -> Result<Transfer, AhbError> {
        if master >= self.config.masters || slave >= self.config.slaves {
            return Err(AhbError::PortOutOfRange);
        }
        // Record the requesting master with the arbiter so grant history (and
        // therefore fairness counters) reflect actual traffic.
        let _ = self.arbiter.grant_among(&[master as usize]);

        let beats_total = bytes.div_ceil(self.config.data_width_bytes).max(1);
        let cycles = self.transfer_cycles(slave, bytes);
        let duration = self.config.clock.cycles_to_time(cycles);
        let grant = self.bus.reserve(at, duration);

        let bursts = beats_total.div_ceil(self.config.max_burst_beats);
        let stats = &mut self.per_master[master as usize];
        stats.transfers += 1;
        stats.bytes += bytes as u64;
        stats.ownership += duration;

        Ok(Transfer {
            start: grant.start,
            end: grant.end,
            bursts,
            beats: beats_total,
            cycles,
        })
    }

    /// Peak bandwidth of the bus in bytes per second (one beat per cycle).
    pub fn peak_bandwidth(&self) -> u64 {
        self.config.clock.as_hz() * self.config.data_width_bytes as u64
    }

    /// Resets dynamic state and statistics.
    pub fn reset(&mut self) {
        self.bus.reset();
        self.arbiter.reset();
        for s in &mut self.per_master {
            *s = BusStats::default();
        }
    }

    /// Encodes the bus's mutable state, in stable field order: the bus
    /// resource, the round-robin arbiter, per-master statistics
    /// (construction-fixed count, no length prefix; transfers, bytes,
    /// ownership each), then the per-slave wait-state overrides. Wait states
    /// are runtime-mutable via
    /// [`set_slave_wait_states`](Self::set_slave_wait_states), so they are
    /// snapshot state even though they usually hold the configured default.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.bus.encode_state(enc);
        self.arbiter.encode_state(enc);
        for s in &self.per_master {
            enc.put_u64(s.transfers);
            enc.put_u64(s.bytes);
            enc.put_time(s.ownership);
        }
        for &w in &self.slave_wait_states {
            enc.put_u32(w);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a bus constructed with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.bus.decode_state(dec)?;
        self.arbiter.decode_state(dec)?;
        for s in &mut self.per_master {
            s.transfers = dec.get_u64()?;
            s.bytes = dec.get_u64()?;
            s.ownership = dec.get_time()?;
        }
        for w in &mut self.slave_wait_states {
            *w = dec.get_u32()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = AhbConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.masters, 16);
        assert_eq!(c.slaves, 16);
    }

    #[test]
    fn burst_kind_selection() {
        assert_eq!(BurstKind::largest_fitting(1), BurstKind::Single);
        assert_eq!(BurstKind::largest_fitting(5), BurstKind::Incr4);
        assert_eq!(BurstKind::largest_fitting(9), BurstKind::Incr8);
        assert_eq!(BurstKind::largest_fitting(100), BurstKind::Incr16);
        assert_eq!(BurstKind::Incr8.beats(), 8);
    }

    #[test]
    fn transfer_cycle_count_scales_with_size() {
        let bus = AhbBus::new(AhbConfig::default());
        let small = bus.transfer_cycles(0, 4);
        let large = bus.transfer_cycles(0, 4096);
        assert!(small < 10);
        // 4096/4 = 1024 beats, 64 bursts of 16 beats: 64*(1+1+16) = 1152.
        assert_eq!(large, 64 * (1 + 1 + 16));
        assert!(large > small * 100);
    }

    #[test]
    fn wait_states_slow_down_a_slave() {
        let mut bus = AhbBus::new(AhbConfig::default());
        let fast = bus.transfer_cycles(1, 1024);
        bus.set_slave_wait_states(1, 2).unwrap();
        let slow = bus.transfer_cycles(1, 1024);
        assert!(slow > fast);
    }

    #[test]
    fn overlapping_transfers_serialize_on_the_bus() {
        let mut bus = AhbBus::new(AhbConfig::default());
        let a = bus.transfer(SimTime::ZERO, 0, 0, 4096);
        let b = bus.transfer(SimTime::ZERO, 1, 0, 4096);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn transfer_duration_matches_cycles_at_200mhz() {
        let mut bus = AhbBus::new(AhbConfig::default());
        let t = bus.transfer(SimTime::ZERO, 0, 0, 64);
        // 64 bytes = 16 beats: 1 arb + 1 addr + 16 data = 18 cycles at 5 ns.
        assert_eq!(t.cycles, 18);
        assert_eq!(t.end - t.start, SimTime::from_ns(90));
    }

    #[test]
    fn out_of_range_ports_error() {
        let mut bus = AhbBus::new(AhbConfig::default());
        assert_eq!(
            bus.try_transfer(SimTime::ZERO, 99, 0, 64).unwrap_err(),
            AhbError::PortOutOfRange
        );
        assert_eq!(
            bus.try_transfer(SimTime::ZERO, 0, 99, 64).unwrap_err(),
            AhbError::PortOutOfRange
        );
        assert_eq!(bus.master_stats(99).unwrap_err(), AhbError::PortOutOfRange);
        assert_eq!(
            bus.set_slave_wait_states(99, 1).unwrap_err(),
            AhbError::PortOutOfRange
        );
    }

    #[test]
    fn stats_accumulate_per_master() {
        let mut bus = AhbBus::new(AhbConfig::default());
        bus.transfer(SimTime::ZERO, 2, 0, 512);
        bus.transfer(SimTime::ZERO, 2, 1, 512);
        let s = bus.master_stats(2).unwrap();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 1024);
        assert!(s.ownership > SimTime::ZERO);
        assert_eq!(bus.master_stats(3).unwrap().transfers, 0);
    }

    #[test]
    fn peak_bandwidth_is_clock_times_width() {
        let bus = AhbBus::new(AhbConfig::default());
        assert_eq!(bus.peak_bandwidth(), 800_000_000);
    }

    #[test]
    fn reset_clears_everything() {
        let mut bus = AhbBus::new(AhbConfig::default());
        bus.transfer(SimTime::ZERO, 0, 0, 4096);
        bus.reset();
        assert_eq!(bus.free_at(), SimTime::ZERO);
        assert_eq!(bus.master_stats(0).unwrap().transfers, 0);
    }

    #[test]
    #[should_panic(expected = "invalid AHB configuration")]
    fn invalid_config_panics_on_construction() {
        let c = AhbConfig {
            masters: 0,
            ..AhbConfig::default()
        };
        let _ = AhbBus::new(c);
    }
}
