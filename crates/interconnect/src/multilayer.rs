//! Multi-Layer AHB: a crossbar of per-slave AHB layers.
//!
//! The paper notes that SSDExplorer can instantiate Multi-Layer AHB (and
//! AXI) interconnects for future architectures, but keeps the single shared
//! bus for the platform instances under test because anything more would be
//! over-designed for current SSD requirements. The multi-layer variant is
//! provided here for ablation studies: transfers to different slaves proceed
//! in parallel, only same-slave traffic serialises.

use crate::ahb::{AhbBus, AhbConfig, AhbError, Transfer};
use ssdx_sim::SimTime;

/// A Multi-Layer AHB interconnect: one internal bus layer per slave port, so
/// masters only contend when addressing the same slave.
#[derive(Debug, Clone)]
pub struct MultiLayerAhb {
    config: AhbConfig,
    layers: Vec<AhbBus>,
}

impl MultiLayerAhb {
    /// Creates a multi-layer interconnect with one layer per slave.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: AhbConfig) -> Self {
        config.validate().expect("invalid AHB configuration");
        let mut layer_cfg = config;
        // Each layer serves exactly one slave.
        layer_cfg.slaves = 1;
        let layers = (0..config.slaves).map(|_| AhbBus::new(layer_cfg)).collect();
        MultiLayerAhb { config, layers }
    }

    /// Configuration in use.
    pub fn config(&self) -> &AhbConfig {
        &self.config
    }

    /// Performs a transfer on the layer serving `slave`.
    ///
    /// # Errors
    ///
    /// Returns [`AhbError::PortOutOfRange`] if `master` or `slave` is out of
    /// range.
    pub fn try_transfer(
        &mut self,
        at: SimTime,
        master: u32,
        slave: u32,
        bytes: u32,
    ) -> Result<Transfer, AhbError> {
        if slave >= self.config.slaves {
            return Err(AhbError::PortOutOfRange);
        }
        self.layers[slave as usize].try_transfer(at, master, 0, bytes)
    }

    /// Infallible wrapper around [`try_transfer`](Self::try_transfer).
    ///
    /// # Panics
    ///
    /// Panics if the master or slave index is out of range.
    pub fn transfer(&mut self, at: SimTime, master: u32, slave: u32, bytes: u32) -> Transfer {
        self.try_transfer(at, master, slave, bytes)
            .expect("master or slave port out of range")
    }

    /// Aggregate peak bandwidth (all layers combined).
    pub fn peak_bandwidth(&self) -> u64 {
        self.layers[0].peak_bandwidth() * self.layers.len() as u64
    }

    /// Resets all layers.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_slaves_do_not_contend() {
        let mut ml = MultiLayerAhb::new(AhbConfig::default());
        let a = ml.transfer(SimTime::ZERO, 0, 0, 4096);
        let b = ml.transfer(SimTime::ZERO, 1, 1, 4096);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
    }

    #[test]
    fn same_slave_still_serialises() {
        let mut ml = MultiLayerAhb::new(AhbConfig::default());
        let a = ml.transfer(SimTime::ZERO, 0, 3, 4096);
        let b = ml.transfer(SimTime::ZERO, 1, 3, 4096);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn aggregate_bandwidth_scales_with_layers() {
        let ml = MultiLayerAhb::new(AhbConfig::default());
        let single = AhbBus::new(AhbConfig::default());
        assert_eq!(ml.peak_bandwidth(), single.peak_bandwidth() * 16);
    }

    #[test]
    fn out_of_range_slave_is_error() {
        let mut ml = MultiLayerAhb::new(AhbConfig::default());
        assert_eq!(
            ml.try_transfer(SimTime::ZERO, 0, 99, 64).unwrap_err(),
            AhbError::PortOutOfRange
        );
    }

    #[test]
    fn reset_clears_layers() {
        let mut ml = MultiLayerAhb::new(AhbConfig::default());
        ml.transfer(SimTime::ZERO, 0, 0, 4096);
        ml.reset();
        let again = ml.transfer(SimTime::ZERO, 0, 0, 64);
        assert_eq!(again.start, SimTime::ZERO);
    }
}
