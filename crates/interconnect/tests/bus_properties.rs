//! Property-based tests of the AMBA AHB model: cycle accounting, bandwidth
//! bounds and the single-layer vs multi-layer comparison.

use proptest::prelude::*;
use ssdx_interconnect::{AhbBus, AhbConfig, BurstKind, MultiLayerAhb};
use ssdx_sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transfer_cycles_scale_linearly_with_burst_count(kilobytes in 1u32..64) {
        let bus = AhbBus::new(AhbConfig::paper_default());
        let bytes = kilobytes * 1024;
        let cycles = bus.transfer_cycles(0, bytes);
        // 16-beat bursts of 4-byte beats: 64 bytes per burst, 18 cycles each.
        let bursts = bytes.div_ceil(64) as u64;
        prop_assert_eq!(cycles, bursts * 18);
    }

    #[test]
    fn bus_throughput_never_exceeds_peak(transfers in prop::collection::vec(64u32..8_192, 1..60)) {
        let mut bus = AhbBus::new(AhbConfig::paper_default());
        let mut last_end = SimTime::ZERO;
        let mut bytes = 0u64;
        for (i, size) in transfers.iter().enumerate() {
            let t = bus.transfer(SimTime::ZERO, (i % 16) as u32, 0, *size);
            last_end = last_end.max(t.end);
            bytes += *size as u64;
        }
        let implied = bytes as f64 / last_end.as_secs_f64();
        prop_assert!(implied <= bus.peak_bandwidth() as f64);
    }

    #[test]
    fn burst_selection_never_exceeds_remaining_beats(beats in 1u32..1_000) {
        let kind = BurstKind::largest_fitting(beats);
        prop_assert!(kind.beats() <= beats.max(1));
    }

    #[test]
    fn wait_states_add_exactly_one_cycle_per_beat(bytes in 4u32..4_096, wait in 0u32..4) {
        let mut bus = AhbBus::new(AhbConfig::paper_default());
        let baseline = bus.transfer_cycles(2, bytes);
        bus.set_slave_wait_states(2, wait).unwrap();
        let slowed = bus.transfer_cycles(2, bytes);
        let beats = bytes.div_ceil(4).max(1) as u64;
        prop_assert_eq!(slowed - baseline, beats * wait as u64);
    }

    #[test]
    fn multilayer_is_never_slower_than_single_layer(
        transfers in prop::collection::vec((0u32..16, 0u32..16, 64u32..4_096), 1..60)
    ) {
        let mut single = AhbBus::new(AhbConfig::paper_default());
        let mut multi = MultiLayerAhb::new(AhbConfig::paper_default());
        let mut single_end = SimTime::ZERO;
        let mut multi_end = SimTime::ZERO;
        for (master, slave, bytes) in transfers {
            single_end = single_end.max(single.transfer(SimTime::ZERO, master, slave, bytes).end);
            multi_end = multi_end.max(multi.transfer(SimTime::ZERO, master, slave, bytes).end);
        }
        prop_assert!(multi_end <= single_end);
    }
}

#[test]
fn per_master_accounting_sums_to_total_traffic() {
    let mut bus = AhbBus::new(AhbConfig::paper_default());
    let sizes = [256u32, 512, 1024, 64, 4096];
    for (i, size) in sizes.iter().enumerate() {
        bus.transfer(SimTime::ZERO, (i % 4) as u32, 0, *size);
    }
    let total: u64 = (0..4).map(|m| bus.master_stats(m).unwrap().bytes).sum();
    assert_eq!(total, sizes.iter().map(|s| *s as u64).sum::<u64>());
}

#[test]
fn descriptor_sized_transfers_are_cheap_relative_to_data() {
    // The control path the SSD firmware exercises (a handful of 32-bit
    // register and descriptor accesses) must cost microseconds at most,
    // orders of magnitude below a NAND page program.
    let mut bus = AhbBus::new(AhbConfig::paper_default());
    let descriptor = bus.transfer(SimTime::ZERO, 0, 0, 128);
    assert!(descriptor.end - descriptor.start < SimTime::from_us(1));
    let page = bus.transfer(descriptor.end, 1, 1, 4096);
    assert!(page.end - page.start > (descriptor.end - descriptor.start) * 10);
}
