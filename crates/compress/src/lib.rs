//! Parametric data-compressor model.
//!
//! Modern SSD architectures use on-the-fly compression to reduce the amount
//! of data actually written to the NAND array (wear-out minimisation) and to
//! increase the effective internal bandwidth. Because the performance of a
//! compressor is fully captured by its compression ratio and its output
//! bandwidth/latency, SSDExplorer models it as a Parametric Time Delay block
//! reproducing the timing of a hardware GZIP engine, placed either between
//! the host interface and the DRAM buffer or between the DRAM buffer and the
//! channel/way controllers. This crate provides that model.
//!
//! # Example
//!
//! ```
//! use ssdx_compress::{CompressorModel, CompressorPlacement};
//!
//! let gzip = CompressorModel::hardware_gzip(CompressorPlacement::ChannelSide);
//! let out = gzip.output_bytes(4096);
//! assert!(out < 4096);
//! ```

#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// Where the compressor sits in the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompressorPlacement {
    /// Between the host interface and the DRAM buffer ("Host interface
    /// compressor"): the DRAM already stores compressed data.
    HostSide,
    /// Between the DRAM buffer and the channel/way controller ("Channel/Way
    /// compressor"): only the NAND traffic is compressed.
    ChannelSide,
}

/// A parametric compressor/decompressor engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressorModel {
    /// Placement in the data path.
    pub placement: CompressorPlacement,
    /// Average compression ratio (output/input, 0 < ratio <= 1).
    pub compression_ratio: f64,
    /// Sustained engine throughput, bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-operation latency (pipeline fill), nanoseconds.
    pub fixed_latency_ns: u64,
}

impl CompressorModel {
    /// Timing of the hardware GZIP engine referenced by the paper:
    /// ~2:1 average ratio on typical data, ~400 MB/s sustained, ~2 µs
    /// pipeline-fill latency.
    pub fn hardware_gzip(placement: CompressorPlacement) -> Self {
        CompressorModel {
            placement,
            compression_ratio: 0.5,
            bandwidth_bytes_per_sec: 400_000_000,
            fixed_latency_ns: 2_000,
        }
    }

    /// A model with an explicit ratio (clamped to `(0, 1]`) and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is zero or the ratio is not finite
    /// and positive.
    pub fn with_ratio(
        placement: CompressorPlacement,
        compression_ratio: f64,
        bandwidth_bytes_per_sec: u64,
    ) -> Self {
        assert!(
            compression_ratio.is_finite() && compression_ratio > 0.0,
            "compression ratio must be positive and finite"
        );
        assert!(bandwidth_bytes_per_sec > 0, "bandwidth must be non-zero");
        CompressorModel {
            placement,
            compression_ratio: compression_ratio.min(1.0),
            bandwidth_bytes_per_sec,
            fixed_latency_ns: 2_000,
        }
    }

    /// Size of the compressed output for `input_bytes` of input (never zero
    /// for non-empty input).
    pub fn output_bytes(&self, input_bytes: u32) -> u32 {
        if input_bytes == 0 {
            return 0;
        }
        ((input_bytes as f64 * self.compression_ratio).ceil() as u32).max(1)
    }

    /// Time the engine needs to compress `input_bytes` of input.
    pub fn compress_time(&self, input_bytes: u32) -> SimTime {
        SimTime::from_ns(self.fixed_latency_ns)
            + ssdx_sim::time::transfer_time(input_bytes as u64, self.bandwidth_bytes_per_sec)
    }

    /// Time the engine needs to decompress back to `output_bytes` of output
    /// (the engine is symmetric: it is paced by the uncompressed side).
    pub fn decompress_time(&self, output_bytes: u32) -> SimTime {
        self.compress_time(output_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gzip_halves_typical_data() {
        let c = CompressorModel::hardware_gzip(CompressorPlacement::HostSide);
        assert_eq!(c.output_bytes(4096), 2048);
        assert_eq!(c.output_bytes(0), 0);
    }

    #[test]
    fn output_never_zero_for_nonempty_input() {
        let c = CompressorModel::with_ratio(CompressorPlacement::ChannelSide, 0.001, 1_000_000);
        assert_eq!(c.output_bytes(100), 1);
    }

    #[test]
    fn incompressible_ratio_is_clamped_to_one() {
        let c = CompressorModel::with_ratio(CompressorPlacement::ChannelSide, 3.0, 1_000_000);
        assert_eq!(c.output_bytes(4096), 4096);
    }

    #[test]
    fn compress_time_scales_with_size() {
        let c = CompressorModel::hardware_gzip(CompressorPlacement::ChannelSide);
        let small = c.compress_time(512);
        let large = c.compress_time(65_536);
        assert!(large > small);
        // 4 KB at 400 MB/s is ~10 µs plus the 2 µs pipeline fill.
        let t = c.compress_time(4096);
        assert!(t >= SimTime::from_us(12) && t <= SimTime::from_us(13));
    }

    #[test]
    fn decompress_is_paced_by_uncompressed_side() {
        let c = CompressorModel::hardware_gzip(CompressorPlacement::ChannelSide);
        assert_eq!(c.decompress_time(4096), c.compress_time(4096));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be non-zero")]
    fn zero_bandwidth_rejected() {
        let _ = CompressorModel::with_ratio(CompressorPlacement::HostSide, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn non_positive_ratio_rejected() {
        let _ = CompressorModel::with_ratio(CompressorPlacement::HostSide, 0.0, 1_000);
    }
}
