//! ONFI channel-interface timing.
//!
//! Commands, addresses and data move between the channel controller and the
//! NAND dies over a shared 8-bit ONFI bus. The time spent on the bus is what
//! couples dies on the same channel: while one die's page data is being
//! transferred, the other dies must wait for the bus even if their arrays are
//! idle. SSDExplorer models this contention explicitly; so do we, by
//! exposing per-transfer bus occupancy times that the channel controller
//! reserves on a shared [`ssdx_sim::Resource`].

use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// Supported ONFI interface speeds (mega-transfers per second on the 8-bit
/// data bus).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OnfiSpeed {
    /// Asynchronous SDR interface with a 50 ns cycle, ~20 MB/s (the legacy
    /// mode of the 2 KB-page MLC parts the paper's experiments model).
    Sdr20,
    /// Asynchronous SDR interface, ~40 MB/s (legacy mode, Barefoot-era SSDs).
    Sdr40,
    /// ONFI 2.x source-synchronous DDR, 133 MT/s.
    Ddr133,
    /// ONFI 2.x source-synchronous DDR, 166 MT/s.
    #[default]
    Ddr166,
    /// ONFI 3.x, 200 MT/s.
    Ddr200,
    /// ONFI 3.x, 400 MT/s.
    Ddr400,
}

impl OnfiSpeed {
    /// Peak data rate of the bus in bytes per second.
    pub fn bytes_per_sec(self) -> u64 {
        match self {
            OnfiSpeed::Sdr20 => 20_000_000,
            OnfiSpeed::Sdr40 => 40_000_000,
            OnfiSpeed::Ddr133 => 133_000_000,
            OnfiSpeed::Ddr166 => 166_000_000,
            OnfiSpeed::Ddr200 => 200_000_000,
            OnfiSpeed::Ddr400 => 400_000_000,
        }
    }
}

/// Timing model of one ONFI channel bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnfiBus {
    /// Interface speed grade.
    pub speed: OnfiSpeed,
    /// Command cycle time, ns (one cycle per command byte).
    pub command_cycle_ns: u64,
    /// Number of address cycles per page-addressed command.
    pub address_cycles: u32,
    /// Turnaround/overhead per command phase, ns (tWB, tRHW and friends).
    pub phase_overhead_ns: u64,
}

impl OnfiBus {
    /// Creates a bus with default command/address timing for a speed grade.
    pub fn new(speed: OnfiSpeed) -> Self {
        OnfiBus {
            speed,
            command_cycle_ns: 25,
            address_cycles: 5,
            phase_overhead_ns: 100,
        }
    }

    /// Time to issue a command + address sequence (no data phase).
    pub fn command_time(&self) -> SimTime {
        // Two command cycles (e.g. 80h/10h) plus the address cycles plus the
        // turnaround overhead.
        let cycles = 2 + self.address_cycles as u64;
        SimTime::from_ns(cycles * self.command_cycle_ns + self.phase_overhead_ns)
    }

    /// Time to move `bytes` of page data over the bus.
    pub fn data_transfer_time(&self, bytes: u64) -> SimTime {
        ssdx_sim::time::transfer_time(bytes, self.speed.bytes_per_sec())
    }

    /// Total bus occupancy for a data-out (read) or data-in (program) phase
    /// of `bytes`, including the command/address phase.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.command_time() + self.data_transfer_time(bytes)
    }

    /// Bus occupancy of an erase command (no data phase).
    pub fn erase_command_time(&self) -> SimTime {
        self.command_time()
    }
}

impl Default for OnfiBus {
    fn default() -> Self {
        OnfiBus::new(OnfiSpeed::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rate_matches_speed_grade() {
        let bus = OnfiBus::new(OnfiSpeed::Sdr40);
        // 4 KB at 40 MB/s = 102.4 µs.
        let t = bus.data_transfer_time(4096);
        assert!(t >= SimTime::from_us(102) && t <= SimTime::from_us(103));
        let fast = OnfiBus::new(OnfiSpeed::Ddr400).data_transfer_time(4096);
        assert!(fast < t / 9);
    }

    #[test]
    fn command_phase_is_small_but_nonzero() {
        let bus = OnfiBus::default();
        let c = bus.command_time();
        assert!(c > SimTime::ZERO);
        assert!(c < SimTime::from_us(1));
    }

    #[test]
    fn transfer_includes_command_phase() {
        let bus = OnfiBus::default();
        assert_eq!(
            bus.transfer_time(4096),
            bus.command_time() + bus.data_transfer_time(4096)
        );
    }

    #[test]
    fn faster_grades_are_monotonically_faster() {
        let grades = [
            OnfiSpeed::Sdr20,
            OnfiSpeed::Sdr40,
            OnfiSpeed::Ddr133,
            OnfiSpeed::Ddr166,
            OnfiSpeed::Ddr200,
            OnfiSpeed::Ddr400,
        ];
        for w in grades.windows(2) {
            assert!(w[0].bytes_per_sec() < w[1].bytes_per_sec());
        }
    }

    #[test]
    fn erase_command_has_no_data_phase() {
        let bus = OnfiBus::default();
        assert_eq!(bus.erase_command_time(), bus.command_time());
    }
}
