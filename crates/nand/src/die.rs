//! The NAND die model: array-side operation execution with latency
//! variability and wear tracking.

use crate::geometry::{GeometryError, NandConfig, PageAddr};
use crate::timing::{NandOp, PageKind};
use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::hash::FastHashMap;
use ssdx_sim::rng::SimRng;
use ssdx_sim::{Resource, SimTime};

/// Result of issuing an operation to a die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpOutcome {
    /// When the die actually started the array operation (it may have had to
    /// wait for a previous operation to finish).
    pub start: SimTime,
    /// When the array operation completed and the die became ready again.
    pub end: SimTime,
    /// Pure array busy time (excludes any wait for the die to become ready).
    pub busy_time: SimTime,
    /// Expected raw bit errors in the page at its current wear level
    /// (meaningful for reads; zero for erase).
    pub expected_raw_errors: f64,
}

/// Statistics accumulated by one die.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DieStats {
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Total array busy time.
    pub busy: SimTime,
}

/// One NAND die: planes, blocks, pages, wear state and a busy/ready line.
///
/// The die is modelled at the granularity the paper needs: the array is a
/// single-server resource (a die executes one operation at a time unless a
/// multi-plane command is used), operation latencies follow the MLC
/// variability profile, and every block tracks its P/E cycles so the RBER
/// seen by the ECC grows over the device lifetime.
#[derive(Debug, Clone)]
pub struct NandDie {
    id: u32,
    config: NandConfig,
    array: Resource,
    /// Per-block wear, keyed by flat block index. Lazily populated (only
    /// touched blocks carry an entry) and hashed with the fixed-key
    /// [`FastHashMap`] — the per-operation entry lookup sits on the
    /// simulation's hottest path, where SipHash was pure overhead.
    wear: FastHashMap<u64, crate::wear::BlockWear>,
    baseline_pe: u64,
    stats: DieStats,
    rng: SimRng,
    rng_seed: u64,
    jitter: f64,
    /// Expected extra raw bit errors a page read picks up per prior read of
    /// its block (read-disturb accumulation). Zero disables the mechanism.
    read_disturb: f64,
    /// Multiplier on the wear-model RBER modelling retention loss (1.0 is
    /// nominal; >1.0 models long power-off intervals at temperature).
    retention_scale: f64,
    /// Memoised `(pe_cycles, base expected raw errors)` of the last page
    /// operation: sequential traffic hammers blocks at one wear level, and
    /// the RBER curve behind this value costs a `powf` per evaluation. Only
    /// the pe-pure part of the error model (wear RBER × retention scale) may
    /// live here — the read-disturb term depends on the block's read count,
    /// which advances mid-run, and is added outside the memo.
    err_memo: (u64, f64),
    /// Memoised nominal program times per page kind, keyed by the P/E count
    /// they were computed at (`(pe_cycles, duration)` per [`PageKind`]).
    prog_memo: [(u64, SimTime); 2],
    /// Memoised nominal erase time, keyed by P/E count.
    bers_memo: (u64, SimTime),
    /// Array read time is wear-independent: cached once.
    t_read: SimTime,
}

/// Memo slots start poisoned with a key no real input produces.
const MEMO_EMPTY: u64 = u64::MAX;

impl NandDie {
    /// Creates a fresh die with the given identifier and configuration.
    ///
    /// The `seed` makes the per-operation timing jitter reproducible.
    pub fn new(id: u32, config: NandConfig, seed: u64) -> Self {
        let rng_seed = seed ^ (id as u64).wrapping_mul(0x9E37_79B9);
        NandDie {
            id,
            array: Resource::new(format!("nand-die-{id}")),
            wear: FastHashMap::default(),
            baseline_pe: 0,
            stats: DieStats::default(),
            rng: SimRng::new(rng_seed),
            rng_seed,
            jitter: 0.05,
            read_disturb: 0.0,
            retention_scale: 1.0,
            err_memo: (MEMO_EMPTY, 0.0),
            prog_memo: [(MEMO_EMPTY, SimTime::ZERO); 2],
            bers_memo: (MEMO_EMPTY, SimTime::ZERO),
            t_read: config.timing.t_read(),
            config,
        }
    }

    /// Die identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Configuration the die was built with.
    pub fn config(&self) -> &NandConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DieStats {
        self.stats
    }

    /// The instant at which the die is next ready to accept an operation.
    pub fn ready_at(&self) -> SimTime {
        self.array.free_at()
    }

    /// Artificially ages every block of the die to `pe_cycles` program/erase
    /// cycles. The wear-out experiment uses this to sample the device at
    /// different points of its rated life without simulating years of writes.
    pub fn age_all_blocks(&mut self, pe_cycles: u64) {
        self.baseline_pe = pe_cycles;
        for wear in self.wear.values_mut() {
            wear.set_pe_cycles(pe_cycles);
        }
    }

    /// Installs a degraded-device error profile: `read_disturb` expected
    /// extra raw errors per accumulated block read, and a `retention_scale`
    /// multiplier on the wear-model RBER. Both are construction-style
    /// parameters (not snapshot state). The RBER memo is re-primed because
    /// its cached value folds the retention multiplier in.
    pub fn set_fault_profile(&mut self, read_disturb: f64, retention_scale: f64) {
        self.read_disturb = read_disturb;
        self.retention_scale = retention_scale;
        self.err_memo = (MEMO_EMPTY, 0.0);
    }

    /// P/E cycle count of the block containing `addr`.
    pub fn block_pe_cycles(&self, addr: PageAddr) -> u64 {
        let key = addr.flat_block(&self.config.geometry);
        self.wear
            .get(&key)
            .map(|w| w.pe_cycles())
            .unwrap_or(self.baseline_pe)
    }

    /// Normalised wear (0–1+) of the block containing `addr`.
    pub fn block_wear(&self, addr: PageAddr) -> f64 {
        self.config.wear.normalized_wear(self.block_pe_cycles(addr))
    }

    /// Expected raw bit errors for one page read at the block's current wear
    /// and read-disturb state, over a codeword covering the full raw page
    /// (data + spare).
    pub fn expected_raw_errors(&self, addr: PageAddr) -> f64 {
        let key = addr.flat_block(&self.config.geometry);
        let entry = self.wear.get(&key);
        let pe = entry.map_or(self.baseline_pe, |w| w.pe_cycles());
        let reads = entry.map_or(0, |w| w.reads());
        self.page_raw_errors(pe, reads)
    }

    /// Memo-free expected raw errors for a page whose block has `pe` P/E
    /// cycles and `reads` accumulated reads: wear-model errors scaled by the
    /// retention multiplier, plus the linear read-disturb term. This is the
    /// single source of truth for the error model; the memoised hot path in
    /// [`try_execute`](Self::try_execute) must stay value-identical to it
    /// (pinned by a regression test).
    pub fn page_raw_errors(&self, pe: u64, reads: u64) -> f64 {
        let bits = self.config.geometry.raw_page_bytes() as u64 * 8;
        self.config.wear.expected_errors(pe, bits) * self.retention_scale
            + self.read_disturb * reads as f64
    }

    /// Executes `op` on the page/block at `addr`, starting no earlier than
    /// `at`. The die serialises operations on its array.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the die geometry; use
    /// [`try_execute`](Self::try_execute) for a fallible variant.
    pub fn execute(&mut self, at: SimTime, op: NandOp, addr: PageAddr) -> OpOutcome {
        self.try_execute(at, op, addr)
            // ssdx-lint::allow(no-panic-in-hot-path): the documented
            // infallible twin of try_execute (see `# Panics` above);
            // callers who cannot prove their range use try_execute.
            .expect("page address out of range for this die geometry")
    }

    /// Fallible variant of [`execute`](Self::execute).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::AddressOutOfRange`] if `addr` does not fit
    /// the die geometry.
    pub fn try_execute(
        &mut self,
        at: SimTime,
        op: NandOp,
        addr: PageAddr,
    ) -> Result<OpOutcome, GeometryError> {
        addr.validate(&self.config.geometry)?;
        let key = addr.flat_block(&self.config.geometry);
        let baseline = self.baseline_pe;
        let wear_entry = self.wear.entry(key).or_insert_with(|| {
            let mut w = crate::wear::BlockWear::new();
            w.set_pe_cycles(baseline);
            w
        });
        let pe = wear_entry.pe_cycles();

        // The nominal latencies and the RBER are pure functions of the
        // block's P/E count; one-entry memos keyed by `pe` skip the float
        // pipeline (including a `powf` for the RBER) on the overwhelmingly
        // common repeat case. The RNG jitter draw below stays unconditional,
        // so the per-die random stream is untouched.
        let nominal = match op {
            NandOp::Read => self.t_read,
            NandOp::Program => {
                let kind = self.config.timing.page_kind(addr.page);
                let slot = &mut self.prog_memo[(kind == PageKind::Msb) as usize];
                if slot.0 != pe {
                    let wear = self.config.wear.normalized_wear(pe);
                    *slot = (pe, self.config.timing.t_prog(kind, wear));
                }
                slot.1
            }
            NandOp::Erase => {
                if self.bers_memo.0 != pe {
                    let wear = self.config.wear.normalized_wear(pe);
                    self.bers_memo = (pe, self.config.timing.t_bers(wear));
                }
                self.bers_memo.1
            }
        };
        // Small per-operation jitter models cell-to-cell variation.
        let factor = 1.0 + self.rng.uniform_f64(-self.jitter, self.jitter);
        let busy = nominal.scale(factor.max(0.01));

        let grant = self.array.reserve(at, busy);

        let expected_raw_errors = match op {
            NandOp::Erase => 0.0,
            _ => {
                if self.err_memo.0 != pe {
                    let bits = self.config.geometry.raw_page_bytes() as u64 * 8;
                    self.err_memo = (
                        pe,
                        self.config.wear.expected_errors(pe, bits) * self.retention_scale,
                    );
                }
                // The read-disturb term uses the block's read count *before*
                // this operation is recorded, and deliberately bypasses the
                // memo: the count advances mid-run, so caching it per-PE
                // would serve stale values.
                self.err_memo.1 + self.read_disturb * wear_entry.reads() as f64
            }
        };

        match op {
            NandOp::Read => {
                wear_entry.record_read();
                self.stats.reads += 1;
            }
            NandOp::Program => {
                wear_entry.record_program();
                self.stats.programs += 1;
            }
            NandOp::Erase => {
                wear_entry.record_erase();
                self.stats.erases += 1;
            }
        }
        self.stats.busy += busy;

        Ok(OpOutcome {
            start: grant.start,
            end: grant.end,
            busy_time: busy,
            expected_raw_errors,
        })
    }

    /// Die utilization over a simulated horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.array.utilization(horizon)
    }

    /// Resets die busy state, statistics and the timing-jitter stream,
    /// keeping wear, so that repeated runs on the same die are reproducible.
    pub fn reset_activity(&mut self) {
        self.array.reset();
        self.stats = DieStats::default();
        self.rng = SimRng::new(self.rng_seed);
    }

    /// Encodes the die's mutable state, in stable field order: array
    /// resource, `baseline_pe`, wear map (length prefix, then `(flat block,
    /// wear)` entries sorted by block key), stats (`reads`, `programs`,
    /// `erases`, `busy`) and the raw jitter-RNG state.
    ///
    /// The identifier, configuration and everything derived from them
    /// (`rng_seed`, `jitter`, `t_read`, the `read_disturb`/`retention_scale`
    /// fault profile) are construction parameters, not snapshot state; the
    /// latency/RBER memos are value-identical caches and are re-primed lazily
    /// after a restore. The read counts feeding the read-disturb term are
    /// part of the encoded wear map, so faulted error growth forks exactly.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.array.encode_state(enc);
        enc.put_u64(self.baseline_pe);
        enc.put_len(self.wear.len());
        let mut blocks: Vec<u64> = self.wear.keys().copied().collect();
        blocks.sort_unstable();
        for key in blocks {
            enc.put_u64(key);
            self.wear[&key].encode_state(enc);
        }
        enc.put_u64(self.stats.reads);
        enc.put_u64(self.stats.programs);
        enc.put_u64(self.stats.erases);
        enc.put_time(self.stats.busy);
        enc.put_u64(self.rng.state());
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// this (already constructed, same-configuration) die. The memoised
    /// latency/RBER slots are reset to their poisoned empty keys so the first
    /// operation after a restore recomputes them.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input, including
    /// wear-map keys that are out of order or duplicated.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.array.decode_state(dec)?;
        self.baseline_pe = dec.get_u64()?;
        let entries = dec.get_len()?;
        self.wear.clear();
        self.wear.reserve(entries);
        let mut prev: Option<u64> = None;
        for _ in 0..entries {
            let offset = dec.position();
            let key = dec.get_u64()?;
            if prev.is_some_and(|p| p >= key) {
                return Err(DecodeError::Invalid {
                    offset,
                    what: "wear-map keys out of order",
                });
            }
            prev = Some(key);
            self.wear
                .insert(key, crate::wear::BlockWear::decode_state(dec)?);
        }
        self.stats.reads = dec.get_u64()?;
        self.stats.programs = dec.get_u64()?;
        self.stats.erases = dec.get_u64()?;
        self.stats.busy = dec.get_time()?;
        self.rng = SimRng::from_state(dec.get_u64()?);
        self.err_memo = (MEMO_EMPTY, 0.0);
        self.prog_memo = [(MEMO_EMPTY, SimTime::ZERO); 2];
        self.bers_memo = (MEMO_EMPTY, SimTime::ZERO);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MlcTimingProfile;

    fn die() -> NandDie {
        NandDie::new(0, NandConfig::default(), 42)
    }

    fn addr(block: u32, page: u32) -> PageAddr {
        PageAddr {
            plane: 0,
            block,
            page,
        }
    }

    #[test]
    fn read_takes_about_t_read() {
        let mut d = die();
        let o = d.execute(SimTime::ZERO, NandOp::Read, addr(0, 0));
        let t = MlcTimingProfile::default().t_read();
        assert!(o.busy_time >= t.scale(0.95) && o.busy_time <= t.scale(1.05));
    }

    #[test]
    fn program_respects_mlc_range() {
        let mut d = die();
        let lsb = d.execute(SimTime::ZERO, NandOp::Program, addr(0, 0));
        let msb = d.execute(SimTime::ZERO, NandOp::Program, addr(0, 1));
        assert!(lsb.busy_time >= SimTime::from_us(850));
        assert!(msb.busy_time > lsb.busy_time);
        assert!(msb.busy_time <= SimTime::from_ms(3));
    }

    #[test]
    fn die_serialises_operations() {
        let mut d = die();
        let a = d.execute(SimTime::ZERO, NandOp::Read, addr(0, 0));
        let b = d.execute(SimTime::ZERO, NandOp::Read, addr(0, 1));
        assert_eq!(b.start, a.end);
        assert!(d.ready_at() == b.end);
    }

    #[test]
    fn erase_increments_pe_and_slows_down_with_age() {
        let mut d = die();
        let a = addr(5, 0);
        let fresh = d.execute(SimTime::ZERO, NandOp::Erase, a);
        assert_eq!(d.block_pe_cycles(a), 1);
        d.age_all_blocks(3_000);
        assert_eq!(d.block_pe_cycles(a), 3_000);
        let worn = d.execute(d.ready_at(), NandOp::Erase, a);
        assert!(worn.busy_time > fresh.busy_time * 2);
    }

    #[test]
    fn aging_applies_to_untouched_blocks_too() {
        let mut d = die();
        d.age_all_blocks(1_500);
        assert_eq!(d.block_pe_cycles(addr(100, 0)), 1_500);
        assert!((d.block_wear(addr(100, 0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expected_errors_grow_with_wear() {
        let mut d = die();
        let fresh = d.expected_raw_errors(addr(0, 0));
        d.age_all_blocks(3_000);
        let worn = d.expected_raw_errors(addr(0, 0));
        assert!(worn > fresh * 10.0);
    }

    #[test]
    fn out_of_range_address_is_an_error() {
        let mut d = die();
        let bad = PageAddr {
            plane: 9,
            block: 0,
            page: 0,
        };
        assert!(d.try_execute(SimTime::ZERO, NandOp::Read, bad).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = die();
        d.execute(SimTime::ZERO, NandOp::Read, addr(0, 0));
        d.execute(d.ready_at(), NandOp::Program, addr(0, 0));
        d.execute(d.ready_at(), NandOp::Erase, addr(0, 0));
        let s = d.stats();
        assert_eq!((s.reads, s.programs, s.erases), (1, 1, 1));
        assert!(s.busy > SimTime::from_us(900));
    }

    #[test]
    fn reset_activity_keeps_wear() {
        let mut d = die();
        d.execute(SimTime::ZERO, NandOp::Erase, addr(0, 0));
        d.reset_activity();
        assert_eq!(d.stats().erases, 0);
        assert_eq!(d.ready_at(), SimTime::ZERO);
        assert_eq!(d.block_pe_cycles(addr(0, 0)), 1);
    }

    #[test]
    fn memoised_error_path_matches_memo_free_under_fault_schedules() {
        // Drives a schedule that advances wear and read counts mid-run, with
        // mid-run artificial aging on top, and checks that the memoised hot
        // path returns exactly the memo-free value at every step.
        let mut d = die();
        d.set_fault_profile(0.25, 3.0);
        let ops = [NandOp::Read, NandOp::Program, NandOp::Erase];
        for round in 0..6u32 {
            if round == 2 {
                d.age_all_blocks(1_500);
            }
            if round == 4 {
                d.age_all_blocks(3_500);
            }
            for i in 0..9u32 {
                let a = addr(i % 3, i % 4);
                let op = ops[(i % 3) as usize];
                let want = match op {
                    NandOp::Erase => 0.0,
                    _ => d.expected_raw_errors(a),
                };
                let got = d.execute(d.ready_at(), op, a).expected_raw_errors;
                assert_eq!(got, want, "round {round} op {i}: memo served stale value");
            }
        }
    }

    #[test]
    fn read_disturb_grows_errors_with_repeated_reads() {
        let mut d = die();
        d.set_fault_profile(0.5, 1.0);
        let a = addr(0, 0);
        let first = d.execute(d.ready_at(), NandOp::Read, a).expected_raw_errors;
        let second = d.execute(d.ready_at(), NandOp::Read, a).expected_raw_errors;
        let third = d.execute(d.ready_at(), NandOp::Read, a).expected_raw_errors;
        assert!((second - first - 0.5).abs() < 1e-9);
        assert!((third - second - 0.5).abs() < 1e-9);
        // A different block has its own read counter.
        let other = d
            .execute(d.ready_at(), NandOp::Read, addr(1, 0))
            .expected_raw_errors;
        assert_eq!(other, first);
    }

    #[test]
    fn retention_scale_multiplies_wear_errors() {
        let mut healthy = die();
        let mut degraded = die();
        degraded.set_fault_profile(0.0, 4.0);
        healthy.age_all_blocks(1_000);
        degraded.age_all_blocks(1_000);
        let a = addr(0, 0);
        assert_eq!(
            degraded.expected_raw_errors(a),
            healthy.expected_raw_errors(a) * 4.0
        );
    }

    #[test]
    fn determinism_same_seed_same_latencies() {
        let mut a = NandDie::new(3, NandConfig::default(), 7);
        let mut b = NandDie::new(3, NandConfig::default(), 7);
        for i in 0..20 {
            let oa = a.execute(a.ready_at(), NandOp::Program, addr(0, i));
            let ob = b.execute(b.ready_at(), NandOp::Program, addr(0, i));
            assert_eq!(oa, ob);
        }
    }
}
