//! Cycle-accurate NAND flash memory array model.
//!
//! This crate reproduces the NAND subsystem SSDExplorer borrows from
//! NANDFlashSim: a hierarchical organisation into dies, planes, blocks and
//! pages, an ONFI-style command/data interface whose transfer time depends on
//! the configured interface speed, and — crucially for the paper's wear-out
//! experiment — intrinsic latency variability: program time depends on the
//! page position inside the block (fast/slow MLC pages), and both timing and
//! raw bit error rate degrade as blocks accumulate program/erase cycles.
//!
//! The modelled device follows the Multi-Level Cell part used in the paper
//! (Samsung K9-class MLC): `tPROG` 900 µs – 3 ms, `tREAD` 60 µs,
//! `tBERS` 1 – 10 ms.
//!
//! # Example
//!
//! ```
//! use ssdx_nand::{NandConfig, NandDie, PageAddr, NandOp};
//! use ssdx_sim::SimTime;
//!
//! let cfg = NandConfig::default();
//! let mut die = NandDie::new(0, cfg, 1234);
//! let addr = PageAddr { plane: 0, block: 0, page: 0 };
//! let outcome = die.execute(SimTime::ZERO, NandOp::Program, addr);
//! assert!(outcome.busy_time >= SimTime::from_us(850));
//! ```

#![warn(rust_2018_idioms)]

pub mod die;
pub mod geometry;
pub mod onfi;
pub mod timing;
pub mod wear;

pub use die::{DieStats, NandDie, OpOutcome};
pub use geometry::{GeometryError, NandConfig, NandGeometry, PageAddr};
pub use onfi::{OnfiBus, OnfiSpeed};
pub use timing::{MlcTimingProfile, NandOp, PageKind};
pub use wear::{BlockWear, WearModel};
