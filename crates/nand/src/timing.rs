//! NAND operation timing: the MLC latency-variability model.
//!
//! MLC NAND programs page pairs onto the same physical word line: the page
//! holding the least-significant bits ("fast" or LSB page) programs much
//! faster than the page holding the most-significant bits ("slow" or MSB
//! page). The paper models a part whose `tPROG` spans 900 µs – 3 ms,
//! `tREAD` is 60 µs and `tBERS` spans 1 – 10 ms; erase time and, to a lesser
//! extent, program time stretch as the block wears out.

use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// The NAND operations the array accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NandOp {
    /// Page read (`tREAD` array access, data then travels over the ONFI bus).
    Read,
    /// Page program (data travels over the ONFI bus, then `tPROG`).
    Program,
    /// Block erase (`tBERS`).
    Erase,
}

impl NandOp {
    /// `true` for operations that work on a page (read/program) rather than a
    /// whole block (erase).
    pub fn is_page_op(self) -> bool {
        !matches!(self, NandOp::Erase)
    }
}

/// Classification of a page inside an MLC block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Least-significant-bit (fast) page.
    Lsb,
    /// Most-significant-bit (slow) page.
    Msb,
}

/// Timing profile of an MLC NAND die.
///
/// All times are expressed in microseconds to mirror datasheet notation and
/// converted to [`SimTime`] on demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlcTimingProfile {
    /// Array read time, µs (`tR`).
    pub t_read_us: u64,
    /// Fastest page program time, µs (LSB pages on a fresh block).
    pub t_prog_min_us: u64,
    /// Slowest page program time, µs (MSB pages on a worn block).
    pub t_prog_max_us: u64,
    /// Fastest block erase time, µs.
    pub t_bers_min_us: u64,
    /// Slowest block erase time, µs.
    pub t_bers_max_us: u64,
    /// Fractional slowdown of program/erase at rated end of life
    /// (e.g. 0.15 = 15 % slower at 100 % wear).
    pub wear_slowdown: f64,
}

impl MlcTimingProfile {
    /// The MLC profile used throughout the paper's experiments
    /// (`tPROG` 900 µs – 3 ms, `tREAD` 60 µs, `tBERS` 1 – 10 ms).
    pub fn paper_mlc() -> Self {
        MlcTimingProfile {
            t_read_us: 60,
            t_prog_min_us: 900,
            t_prog_max_us: 3_000,
            t_bers_min_us: 1_000,
            t_bers_max_us: 10_000,
            wear_slowdown: 0.15,
        }
    }

    /// A fast SLC-like profile, useful for ablation studies.
    pub fn slc_like() -> Self {
        MlcTimingProfile {
            t_read_us: 25,
            t_prog_min_us: 200,
            t_prog_max_us: 300,
            t_bers_min_us: 700,
            t_bers_max_us: 1_500,
            wear_slowdown: 0.05,
        }
    }

    /// Classifies a page index as LSB (fast) or MSB (slow). Even word-line
    /// ordering maps even page indices to LSB pages.
    pub fn page_kind(&self, page_index: u32) -> PageKind {
        if page_index % 2 == 0 {
            PageKind::Lsb
        } else {
            PageKind::Msb
        }
    }

    /// Array read time.
    pub fn t_read(&self) -> SimTime {
        SimTime::from_us(self.t_read_us)
    }

    /// Program time for a page of the given kind at the given wear level
    /// (`wear` is normalised 0.0 – 1.0; values beyond 1.0 keep degrading).
    ///
    /// LSB pages program near the minimum, MSB pages near the maximum; wear
    /// adds a proportional slowdown on top.
    pub fn t_prog(&self, kind: PageKind, wear: f64) -> SimTime {
        let base_us = match kind {
            PageKind::Lsb => self.t_prog_min_us as f64,
            PageKind::Msb => {
                // MSB pages sit at ~85 % of the worst-case datasheet figure.
                self.t_prog_min_us as f64 + 0.85 * (self.t_prog_max_us - self.t_prog_min_us) as f64
            }
        };
        let slow = 1.0 + self.wear_slowdown * wear.max(0.0);
        SimTime::from_ns_f64(base_us * slow * 1_000.0)
    }

    /// Mean program time across LSB and MSB pages at the given wear level.
    pub fn t_prog_mean(&self, wear: f64) -> SimTime {
        let lsb = self.t_prog(PageKind::Lsb, wear);
        let msb = self.t_prog(PageKind::Msb, wear);
        (lsb + msb) / 2
    }

    /// Erase time at the given wear level: erase stretches from the datasheet
    /// minimum toward the maximum as the block wears out.
    pub fn t_bers(&self, wear: f64) -> SimTime {
        let w = wear.clamp(0.0, 1.0);
        let us = self.t_bers_min_us as f64 + w * (self.t_bers_max_us - self.t_bers_min_us) as f64;
        SimTime::from_ns_f64(us * 1_000.0)
    }

    /// Checks that the ranges are ordered and non-degenerate.
    pub fn validate(&self) -> Result<(), TimingError> {
        if self.t_prog_min_us == 0 || self.t_read_us == 0 || self.t_bers_min_us == 0 {
            return Err(TimingError::ZeroTime);
        }
        if self.t_prog_max_us < self.t_prog_min_us || self.t_bers_max_us < self.t_bers_min_us {
            return Err(TimingError::InvertedRange);
        }
        if !(0.0..=10.0).contains(&self.wear_slowdown) {
            return Err(TimingError::BadSlowdown);
        }
        Ok(())
    }
}

impl Default for MlcTimingProfile {
    fn default() -> Self {
        Self::paper_mlc()
    }
}

/// Error returned by [`MlcTimingProfile::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// A base latency is zero.
    ZeroTime,
    /// A min/max range is inverted.
    InvertedRange,
    /// The wear slowdown factor is out of range.
    BadSlowdown,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::ZeroTime => write!(f, "timing value is zero"),
            TimingError::InvertedRange => write!(f, "timing range is inverted"),
            TimingError::BadSlowdown => write!(f, "wear slowdown factor out of range"),
        }
    }
}

impl std::error::Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_datasheet_ranges() {
        let p = MlcTimingProfile::paper_mlc();
        assert!(p.validate().is_ok());
        assert_eq!(p.t_read().as_us(), 60);
        let fresh_lsb = p.t_prog(PageKind::Lsb, 0.0);
        let fresh_msb = p.t_prog(PageKind::Msb, 0.0);
        assert_eq!(fresh_lsb.as_us(), 900);
        assert!(fresh_msb >= SimTime::from_us(2_000) && fresh_msb <= SimTime::from_us(3_000));
        assert_eq!(p.t_bers(0.0).as_us(), 1_000);
        assert_eq!(p.t_bers(1.0).as_us(), 10_000);
    }

    #[test]
    fn lsb_pages_are_faster_than_msb() {
        let p = MlcTimingProfile::default();
        assert!(p.t_prog(PageKind::Lsb, 0.0) < p.t_prog(PageKind::Msb, 0.0));
    }

    #[test]
    fn wear_slows_program_and_erase() {
        let p = MlcTimingProfile::default();
        assert!(p.t_prog(PageKind::Msb, 1.0) > p.t_prog(PageKind::Msb, 0.0));
        assert!(p.t_bers(0.7) > p.t_bers(0.1));
        assert!(p.t_prog_mean(0.5) > p.t_prog_mean(0.0));
    }

    #[test]
    fn page_kind_alternates() {
        let p = MlcTimingProfile::default();
        assert_eq!(p.page_kind(0), PageKind::Lsb);
        assert_eq!(p.page_kind(1), PageKind::Msb);
        assert_eq!(p.page_kind(126), PageKind::Lsb);
    }

    #[test]
    fn erase_time_clamps_beyond_rated_life() {
        let p = MlcTimingProfile::default();
        assert_eq!(p.t_bers(1.5), p.t_bers(1.0));
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let p = MlcTimingProfile {
            t_prog_max_us: 10,
            ..MlcTimingProfile::default()
        };
        assert_eq!(p.validate(), Err(TimingError::InvertedRange));
        let p = MlcTimingProfile {
            t_read_us: 0,
            ..MlcTimingProfile::default()
        };
        assert_eq!(p.validate(), Err(TimingError::ZeroTime));
        let p = MlcTimingProfile {
            wear_slowdown: -1.0,
            ..MlcTimingProfile::default()
        };
        assert_eq!(p.validate(), Err(TimingError::BadSlowdown));
    }

    #[test]
    fn op_classification() {
        assert!(NandOp::Read.is_page_op());
        assert!(NandOp::Program.is_page_op());
        assert!(!NandOp::Erase.is_page_op());
    }
}
