//! Wear-out tracking and raw-bit-error-rate modelling.
//!
//! Every program/erase (P/E) cycle degrades the tunnel oxide of the flash
//! cells: the raw bit error rate (RBER) grows with accumulated cycles, which
//! in turn forces the ECC to correct more bits per codeword — the effect the
//! paper's Fig. 5 quantifies at SSD level.

use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};

/// Parameters of the wear/RBER model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearModel {
    /// Rated endurance in P/E cycles (the "normalized rated endurance" axis
    /// of Fig. 5 is P/E cycles divided by this number).
    pub rated_pe_cycles: u64,
    /// RBER of a fresh block.
    pub rber_fresh: f64,
    /// RBER at rated end of life.
    pub rber_end_of_life: f64,
    /// Exponent of the RBER growth curve (RBER grows super-linearly in P/E).
    pub growth_exponent: f64,
}

/// Normalised-wear ceiling past which the RBER curve saturates.
///
/// The growth curve is a fit against rated-life characterisation data;
/// extrapolating it without bound produces astronomically large error counts
/// (and, at `u64::MAX` P/E cycles, non-finite arithmetic) for regimes no
/// characterisation covers. Beyond four times rated life the oxide is
/// modelled as fully degraded and the RBER stays at its ceiling.
pub const MAX_NORMALIZED_WEAR: f64 = 4.0;

impl WearModel {
    /// The MLC wear model used for the paper's experiments: 3 000 rated P/E
    /// cycles, RBER growing from 1e-6 to 2e-3 with a cubic-ish curve.
    pub fn paper_mlc() -> Self {
        WearModel {
            rated_pe_cycles: 3_000,
            rber_fresh: 1e-6,
            rber_end_of_life: 2e-3,
            growth_exponent: 2.5,
        }
    }

    /// Normalised wear (0.0 fresh, 1.0 at rated endurance) for a P/E count.
    /// Values beyond rated endurance exceed 1.0.
    pub fn normalized_wear(&self, pe_cycles: u64) -> f64 {
        pe_cycles as f64 / self.rated_pe_cycles.max(1) as f64
    }

    /// Raw bit error rate after `pe_cycles` program/erase cycles. Saturates
    /// at [`MAX_NORMALIZED_WEAR`] so pathological erase counts (fault
    /// campaigns age blocks far past rated life) stay finite.
    pub fn rber(&self, pe_cycles: u64) -> f64 {
        let w = self.normalized_wear(pe_cycles).min(MAX_NORMALIZED_WEAR);
        self.rber_fresh + (self.rber_end_of_life - self.rber_fresh) * w.powf(self.growth_exponent)
    }

    /// Expected number of raw bit errors in a codeword of `codeword_bits`
    /// bits after `pe_cycles` cycles.
    pub fn expected_errors(&self, pe_cycles: u64, codeword_bits: u64) -> f64 {
        self.rber(pe_cycles) * codeword_bits as f64
    }

    /// P/E cycle count corresponding to a normalised endurance point
    /// (e.g. `0.4` → 40 % of rated life consumed).
    pub fn pe_at(&self, normalized: f64) -> u64 {
        (normalized.max(0.0) * self.rated_pe_cycles as f64).round() as u64
    }
}

impl Default for WearModel {
    fn default() -> Self {
        Self::paper_mlc()
    }
}

/// Per-block wear bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockWear {
    pe_cycles: u64,
    programs: u64,
    reads: u64,
}

impl BlockWear {
    /// Creates a fresh block with zero cycles.
    pub fn new() -> Self {
        BlockWear::default()
    }

    /// Accumulated program/erase cycles.
    pub fn pe_cycles(&self) -> u64 {
        self.pe_cycles
    }

    /// Number of page programs recorded.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Number of page reads recorded.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Records one erase (this is what increments the P/E count). Saturates
    /// at `u64::MAX` rather than wrapping for blocks aged to the limit.
    pub fn record_erase(&mut self) {
        self.pe_cycles = self.pe_cycles.saturating_add(1);
    }

    /// Records one page program. Saturates at `u64::MAX`.
    pub fn record_program(&mut self) {
        self.programs = self.programs.saturating_add(1);
    }

    /// Records one page read. Saturates at `u64::MAX`.
    pub fn record_read(&mut self) {
        self.reads = self.reads.saturating_add(1);
    }

    /// Forces the P/E count (used to age a device artificially, as the
    /// wear-out experiment does).
    pub fn set_pe_cycles(&mut self, pe: u64) {
        self.pe_cycles = pe;
    }

    /// Encodes the wear record, in stable field order: `pe_cycles`,
    /// `programs`, `reads`.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.pe_cycles);
        enc.put_u64(self.programs);
        enc.put_u64(self.reads);
    }

    /// Decodes a wear record captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockWear {
            pe_cycles: dec.get_u64()?,
            programs: dec.get_u64()?,
            reads: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rber_grows_monotonically_with_wear() {
        let m = WearModel::default();
        let mut prev = 0.0;
        for pe in (0..=6000).step_by(100) {
            let r = m.rber(pe);
            assert!(r >= prev, "rber must not decrease (pe={pe})");
            prev = r;
        }
    }

    #[test]
    fn rber_endpoints_match_parameters() {
        let m = WearModel::default();
        assert!((m.rber(0) - m.rber_fresh).abs() < 1e-12);
        assert!((m.rber(m.rated_pe_cycles) - m.rber_end_of_life).abs() < 1e-9);
    }

    #[test]
    fn normalized_wear_and_pe_round_trip() {
        let m = WearModel::default();
        assert_eq!(m.pe_at(0.5), 1_500);
        assert!((m.normalized_wear(1_500) - 0.5).abs() < 1e-12);
        assert_eq!(m.pe_at(-1.0), 0);
    }

    #[test]
    fn expected_errors_scale_with_codeword_size() {
        let m = WearModel::default();
        let e1 = m.expected_errors(3_000, 1_000);
        let e2 = m.expected_errors(3_000, 2_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn rber_saturates_past_four_times_rated_life() {
        let m = WearModel::default();
        let ceiling = m.rber(m.rated_pe_cycles * 4);
        assert!(ceiling.is_finite());
        assert_eq!(m.rber(m.rated_pe_cycles * 8), ceiling);
        assert_eq!(m.rber(u64::MAX), ceiling);
        assert!(m.expected_errors(u64::MAX, u64::MAX).is_finite());
    }

    #[test]
    fn erase_count_saturates_instead_of_wrapping() {
        let mut b = BlockWear::new();
        b.set_pe_cycles(u64::MAX);
        b.record_erase();
        assert_eq!(b.pe_cycles(), u64::MAX);
        let mut c = BlockWear::new();
        c.set_pe_cycles(u64::MAX - 1);
        c.record_erase();
        c.record_erase();
        assert_eq!(c.pe_cycles(), u64::MAX);
    }

    #[test]
    fn block_wear_bookkeeping() {
        let mut b = BlockWear::new();
        b.record_program();
        b.record_program();
        b.record_read();
        b.record_erase();
        assert_eq!(b.programs(), 2);
        assert_eq!(b.reads(), 1);
        assert_eq!(b.pe_cycles(), 1);
        b.set_pe_cycles(500);
        assert_eq!(b.pe_cycles(), 500);
    }
}
