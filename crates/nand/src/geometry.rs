//! NAND flash device geometry: dies, planes, blocks and pages.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical organisation of one NAND die.
///
/// NAND flash devices are hierarchically organised in dies, planes, blocks
/// and pages; program and read operate on pages, erase on whole blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NandGeometry {
    /// Planes per die (concurrently programmable with multi-plane commands).
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Main data area of a page, in bytes.
    pub page_size_bytes: u32,
    /// Spare (out-of-band) area of a page, in bytes, used for ECC parity.
    pub spare_bytes: u32,
}

impl NandGeometry {
    /// Geometry of the MLC part modelled in the paper (4 KB pages, 128 pages
    /// per block, 2 planes).
    pub fn mlc_4kb() -> Self {
        NandGeometry {
            planes_per_die: 2,
            blocks_per_plane: 2048,
            pages_per_block: 128,
            page_size_bytes: 4096,
            spare_bytes: 224,
        }
    }

    /// Geometry of the Samsung K9-class 2 KB-page MLC part the paper's
    /// experiments reference (2048 + 64 byte pages, 128 pages per block).
    pub fn mlc_2kb() -> Self {
        NandGeometry {
            planes_per_die: 2,
            blocks_per_plane: 2048,
            pages_per_block: 128,
            page_size_bytes: 2048,
            spare_bytes: 64,
        }
    }

    /// Total number of blocks in the die.
    pub fn blocks_per_die(&self) -> u64 {
        self.planes_per_die as u64 * self.blocks_per_plane as u64
    }

    /// Total number of pages in the die.
    pub fn pages_per_die(&self) -> u64 {
        self.blocks_per_die() * self.pages_per_block as u64
    }

    /// User capacity of one die in bytes (spare area excluded).
    pub fn die_capacity_bytes(&self) -> u64 {
        self.pages_per_die() * self.page_size_bytes as u64
    }

    /// Raw size of a page including the spare area.
    pub fn raw_page_bytes(&self) -> u32 {
        self.page_size_bytes + self.spare_bytes
    }

    /// Validates internal consistency (all dimensions non-zero).
    pub fn validate(&self) -> Result<(), GeometryError> {
        if self.planes_per_die == 0
            || self.blocks_per_plane == 0
            || self.pages_per_block == 0
            || self.page_size_bytes == 0
        {
            return Err(GeometryError::ZeroDimension);
        }
        Ok(())
    }
}

impl Default for NandGeometry {
    fn default() -> Self {
        Self::mlc_4kb()
    }
}

/// Error returned when a [`NandGeometry`] or [`PageAddr`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// One of the geometry dimensions is zero.
    ZeroDimension,
    /// An address component exceeds the geometry bounds.
    AddressOutOfRange,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroDimension => write!(f, "geometry dimension is zero"),
            GeometryError::AddressOutOfRange => write!(f, "page address out of range"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Address of one page inside a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// Plane index inside the die.
    pub plane: u32,
    /// Block index inside the plane.
    pub block: u32,
    /// Page index inside the block.
    pub page: u32,
}

impl PageAddr {
    /// Checks the address against a geometry.
    pub fn validate(&self, geo: &NandGeometry) -> Result<(), GeometryError> {
        if self.plane >= geo.planes_per_die
            || self.block >= geo.blocks_per_plane
            || self.page >= geo.pages_per_block
        {
            return Err(GeometryError::AddressOutOfRange);
        }
        Ok(())
    }

    /// Linear block index inside the die (`plane * blocks_per_plane + block`).
    pub fn flat_block(&self, geo: &NandGeometry) -> u64 {
        self.plane as u64 * geo.blocks_per_plane as u64 + self.block as u64
    }

    /// Linear page index inside the die.
    pub fn flat_page(&self, geo: &NandGeometry) -> u64 {
        self.flat_block(geo) * geo.pages_per_block as u64 + self.page as u64
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}/b{}/pg{}", self.plane, self.block, self.page)
    }
}

/// Complete configuration of a NAND die: geometry plus timing and wear
/// parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NandConfig {
    /// Physical organisation.
    pub geometry: NandGeometry,
    /// Operation timing profile.
    pub timing: crate::timing::MlcTimingProfile,
    /// Wear-out model parameters.
    pub wear: crate::wear::WearModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_consistent() {
        let g = NandGeometry::default();
        assert!(g.validate().is_ok());
        assert_eq!(g.blocks_per_die(), 4096);
        assert_eq!(g.pages_per_die(), 4096 * 128);
        assert_eq!(g.die_capacity_bytes(), 4096 * 128 * 4096);
        assert_eq!(g.raw_page_bytes(), 4096 + 224);
    }

    #[test]
    fn zero_dimension_rejected() {
        let g = NandGeometry {
            pages_per_block: 0,
            ..NandGeometry::default()
        };
        assert_eq!(g.validate(), Err(GeometryError::ZeroDimension));
    }

    #[test]
    fn page_addr_validation() {
        let g = NandGeometry::default();
        let ok = PageAddr {
            plane: 1,
            block: 10,
            page: 127,
        };
        assert!(ok.validate(&g).is_ok());
        let bad_plane = PageAddr {
            plane: 2,
            block: 0,
            page: 0,
        };
        assert_eq!(
            bad_plane.validate(&g),
            Err(GeometryError::AddressOutOfRange)
        );
        let bad_page = PageAddr {
            plane: 0,
            block: 0,
            page: 128,
        };
        assert_eq!(bad_page.validate(&g), Err(GeometryError::AddressOutOfRange));
    }

    #[test]
    fn flat_indices_are_unique_and_dense() {
        let g = NandGeometry {
            planes_per_die: 2,
            blocks_per_plane: 3,
            pages_per_block: 4,
            page_size_bytes: 2048,
            spare_bytes: 64,
        };
        let mut seen = std::collections::BTreeSet::new();
        for plane in 0..2 {
            for block in 0..3 {
                for page in 0..4 {
                    let a = PageAddr { plane, block, page };
                    assert!(seen.insert(a.flat_page(&g)));
                }
            }
        }
        assert_eq!(seen.len(), 24);
        assert_eq!(*seen.iter().max().unwrap(), 23);
    }

    #[test]
    fn display_formats() {
        let a = PageAddr {
            plane: 1,
            block: 2,
            page: 3,
        };
        assert_eq!(a.to_string(), "p1/b2/pg3");
        assert_eq!(
            GeometryError::ZeroDimension.to_string(),
            "geometry dimension is zero"
        );
    }
}
