//! Property-based tests of the NAND array model: timing bounds, wear
//! monotonicity, die serialisation and ONFI bus arithmetic.

use proptest::prelude::*;
use ssdx_nand::{
    MlcTimingProfile, NandConfig, NandDie, NandGeometry, NandOp, OnfiBus, OnfiSpeed, PageAddr,
    WearModel,
};
use ssdx_sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn operations_always_respect_datasheet_bounds(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..3, 0u32..2, 0u32..64, 0u32..128), 1..60)
    ) {
        let config = NandConfig::default();
        let mut die = NandDie::new(0, config, seed);
        let timing = MlcTimingProfile::paper_mlc();
        for (op, plane, block, page) in ops {
            let addr = PageAddr { plane, block, page };
            let op = match op {
                0 => NandOp::Read,
                1 => NandOp::Program,
                _ => NandOp::Erase,
            };
            let outcome = die.execute(die.ready_at(), op, addr);
            // 5 % jitter plus wear slowdown bound every operation.
            let (lo, hi) = match op {
                NandOp::Read => (SimTime::from_us(timing.t_read_us), SimTime::from_us(timing.t_read_us)),
                NandOp::Program => (
                    SimTime::from_us(timing.t_prog_min_us),
                    SimTime::from_us(timing.t_prog_max_us),
                ),
                NandOp::Erase => (
                    SimTime::from_us(timing.t_bers_min_us),
                    SimTime::from_us(timing.t_bers_max_us),
                ),
            };
            prop_assert!(outcome.busy_time >= lo.scale(0.94));
            prop_assert!(outcome.busy_time <= hi.scale(1.06 * (1.0 + timing.wear_slowdown)));
        }
    }

    #[test]
    fn die_never_overlaps_array_operations(
        seed in any::<u64>(),
        pages in prop::collection::vec(0u32..128, 2..40)
    ) {
        let mut die = NandDie::new(1, NandConfig::default(), seed);
        let mut previous_end = SimTime::ZERO;
        for page in pages {
            let addr = PageAddr { plane: 0, block: 0, page };
            // Everything requested at time zero must still serialise.
            let outcome = die.execute(SimTime::ZERO, NandOp::Program, addr);
            prop_assert!(outcome.start >= previous_end);
            previous_end = outcome.end;
        }
    }

    #[test]
    fn aging_never_speeds_anything_up(pe_young in 0u64..1_500, pe_old in 1_500u64..6_000, seed in any::<u64>()) {
        let config = NandConfig::default();
        let addr = PageAddr { plane: 0, block: 0, page: 1 };
        let mut young = NandDie::new(2, config, seed);
        let mut old = NandDie::new(2, config, seed);
        young.age_all_blocks(pe_young);
        old.age_all_blocks(pe_old);
        let t_young = young.execute(SimTime::ZERO, NandOp::Program, addr).busy_time;
        let t_old = old.execute(SimTime::ZERO, NandOp::Program, addr).busy_time;
        // Same seed -> same jitter draw -> the only difference is wear.
        prop_assert!(t_old >= t_young);
        prop_assert!(old.expected_raw_errors(addr) >= young.expected_raw_errors(addr));
    }

    #[test]
    fn onfi_transfer_time_is_monotone_in_size_and_speed(bytes in 1u64..65_536) {
        let slow = OnfiBus::new(OnfiSpeed::Sdr20);
        let fast = OnfiBus::new(OnfiSpeed::Ddr400);
        prop_assert!(slow.transfer_time(bytes) > fast.transfer_time(bytes));
        prop_assert!(slow.transfer_time(bytes + 1) >= slow.transfer_time(bytes));
    }

    #[test]
    fn rated_endurance_normalisation_is_linear(pe in 0u64..100_000) {
        let wear = WearModel::paper_mlc();
        let w = wear.normalized_wear(pe);
        prop_assert!((w - pe as f64 / wear.rated_pe_cycles as f64).abs() < 1e-12);
        prop_assert_eq!(wear.pe_at(w), pe);
    }

    #[test]
    fn valid_addresses_roundtrip_through_flat_indices(
        plane in 0u32..2,
        block in 0u32..2_048,
        page in 0u32..128
    ) {
        let geo = NandGeometry::mlc_2kb();
        let addr = PageAddr { plane, block, page };
        prop_assert!(addr.validate(&geo).is_ok());
        let flat = addr.flat_page(&geo);
        prop_assert!(flat < geo.pages_per_die());
    }
}

#[test]
fn a_full_block_lifecycle_wears_exactly_one_cycle() {
    let config = NandConfig::default();
    let mut die = NandDie::new(7, config, 99);
    let block = 12;
    // Program every page of the block, then erase it.
    for page in 0..config.geometry.pages_per_block {
        let addr = PageAddr {
            plane: 0,
            block,
            page,
        };
        die.execute(die.ready_at(), NandOp::Program, addr);
    }
    die.execute(
        die.ready_at(),
        NandOp::Erase,
        PageAddr {
            plane: 0,
            block,
            page: 0,
        },
    );
    assert_eq!(
        die.block_pe_cycles(PageAddr {
            plane: 0,
            block,
            page: 0
        }),
        1
    );
    let stats = die.stats();
    assert_eq!(stats.programs, config.geometry.pages_per_block as u64);
    assert_eq!(stats.erases, 1);
    // The busy time of a full block program dwarfs the erase.
    assert!(stats.busy > SimTime::from_ms(100));
}

#[test]
fn interleaving_two_dies_halves_the_makespan() {
    let config = NandConfig::default();
    let mut single = NandDie::new(0, config, 5);
    let mut pair = (NandDie::new(0, config, 5), NandDie::new(1, config, 6));
    let pages = 32u32;

    let mut single_end = SimTime::ZERO;
    for page in 0..pages {
        let addr = PageAddr {
            plane: 0,
            block: 0,
            page,
        };
        single_end = single
            .execute(SimTime::ZERO, NandOp::Program, addr)
            .end
            .max(single_end);
    }

    let mut pair_end = SimTime::ZERO;
    for page in 0..pages {
        let addr = PageAddr {
            plane: 0,
            block: 0,
            page,
        };
        // Distribute LSB/MSB page *pairs* across the two dies so each die
        // sees the same mix of fast and slow pages.
        let outcome = if (page / 2) % 2 == 0 {
            pair.0.execute(SimTime::ZERO, NandOp::Program, addr)
        } else {
            pair.1.execute(SimTime::ZERO, NandOp::Program, addr)
        };
        pair_end = pair_end.max(outcome.end);
    }
    let ratio = pair_end.as_ns_f64() / single_end.as_ns_f64();
    assert!(
        (0.4..0.62).contains(&ratio),
        "two dies should roughly halve the makespan, ratio {ratio}"
    );
}
