//! Vendored stand-in for `serde_derive`, used because this build environment
//! has no access to a crates.io registry.
//!
//! The real derive macros generate `Serialize`/`Deserialize` trait impls; the
//! workspace only uses the derives as annotations (nothing serializes through
//! a `Serializer` at runtime), so these expand to marker impls of the traits
//! defined in the vendored `serde` crate. The impls are generated textually
//! from the item's name so `T: Serialize` bounds still hold.

use proc_macro::TokenStream;

/// Extract the identifier that immediately follows the `struct`/`enum`
/// keyword, skipping attributes and doc comments.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        let s = tt.to_string();
        if saw_kw {
            return Some(s);
        }
        if s == "struct" || s == "enum" || s == "union" {
            saw_kw = true;
        }
    }
    None
}

/// Emit `impl Trait for Type {}` only for non-generic items; generic items
/// get no impl (the workspace never requires bounds on generic types).
fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let Some(name) = type_name(&input) else {
        return TokenStream::new();
    };
    // A generic parameter list would need to be replicated on the impl;
    // every derived type in this workspace is concrete, so skip generics.
    let text = input.to_string();
    let is_generic = text
        .find(&name)
        .map(|at| text[at + name.len()..].trim_start().starts_with('<'))
        .unwrap_or(false);
    if is_generic {
        return TokenStream::new();
    }
    format!("impl {trait_path} for {name} {{}}")
        .parse()
        .unwrap_or_default()
}

/// No-op `#[derive(Serialize)]`: emits a marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// No-op `#[derive(Deserialize)]`: emits a marker `serde::DeserializeOwned` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::DeserializeOwned", input)
}
