//! Vendored stand-in for `serde`, used because this build environment has no
//! access to a crates.io registry.
//!
//! The workspace annotates its model types with `#[derive(Serialize,
//! Deserialize)]` so that reports and configurations stay serialization-ready,
//! but nothing actually drives a `Serializer` at runtime. This crate therefore
//! provides the trait names and the derive macros as markers with zero
//! behaviour; swapping in the real `serde` is a manifest-only change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

/// Serialization side of the data model, kept as a namespace so imports of
/// `serde::ser::...` keep resolving.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization side of the data model, kept as a namespace so imports of
/// `serde::de::...` keep resolving.
pub mod de {
    pub use crate::DeserializeOwned;
}
