//! Vendored minimal property-testing engine standing in for `proptest`.
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace ships a small, deterministic implementation of the subset of the
//! proptest API its test suites use:
//!
//! - the [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_oneof!`],
//! - the [`Strategy`] trait with `prop_map`, implemented for integer and float
//!   ranges, tuples, [`Just`], weighted unions and boxed strategies,
//! - `prop::collection::vec`, `prop::sample::select`, `prop::bool::ANY` and
//!   [`any`] for the primitive types the suites draw.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! file: cases are generated from a fixed per-test seed, so every run explores
//! the same inputs and failures reproduce immediately. Swapping the real
//! proptest back in is a manifest-only change.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases [`proptest!`] runs when no config header is given.
pub const DEFAULT_CASES: u32 = 256;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Failure raised by the `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG used to drive strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an explicit value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// RNG seeded deterministically from a test name, so each property walks
    /// its own fixed sequence run after run.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation; bias is negligible for test use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of generated values.
///
/// The real proptest separates strategies from value trees to support
/// shrinking; this stand-in generates final values directly.
pub trait Strategy {
    /// Type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Integer/float types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        f64::sample(rng, lo as f64, hi as f64) as f32
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range_int {
    ($($ty:ty),*) => {$(
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$ty>::MIN && hi == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_inclusive_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Weighted union of strategies, as built by [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Union drawing each variant with probability proportional to its weight.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        let total_weight = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.variants {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vec strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding clones of elements of a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly select one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for an unbiased arbitrary `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// An unbiased arbitrary `bool`.
    pub const ANY: BoolAny = BoolAny;
}

/// Numeric strategy namespaces (`prop::num`).
pub mod num {
    /// `f64` sub-namespace, matching `proptest::num::f64` constants.
    pub mod f64 {
        use super::super::{Strategy, TestRng};

        /// Strategy over finite, positive, zero or negative-normal floats.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Spread across magnitudes without producing NaN/inf.
                let mantissa = rng.unit_f64() * 2.0 - 1.0;
                let exp = (rng.below(61) as i32 - 30) as f64;
                mantissa * exp.exp2()
            }
        }

        /// Finite floats of either sign.
        pub const ANY: AnyF64 = AnyF64;
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace mirror of the `proptest::prop` re-export tree.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(binding in strategy, ..) { body }`
/// item becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $binding = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Assert two expressions differ inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Build a [`Union`] strategy from `weight => strategy` arms (or unweighted
/// arms, which all get weight 1).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}
