//! Vendored minimal benchmark harness standing in for `criterion`.
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace ships a tiny wall-clock harness with the same API shape the
//! `benches/` targets use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId::new`], `Bencher::iter`
//! and the [`criterion_group!`]/[`criterion_main!`] macros. It runs each
//! benchmark for a fixed number of samples and prints mean wall-clock time per
//! iteration; there is no statistical analysis or report output. Swapping the
//! real criterion back in is a manifest-only change.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier combining a function name and a parameter, e.g. `sweep/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` evaluated at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run one benchmark closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Conclude the group (kept for API parity; reporting happens per bench).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations.max(1) as u32
        };
        println!(
            "  {}/{id}: {per_iter:?}/iter over {} iterations",
            self.name, bencher.iterations
        );
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Prevent the optimiser from discarding a value (API parity re-export).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
