//! SSDExplorer-RS — a virtual platform for fine-grained design space
//! exploration of Solid State Drives.
//!
//! This is the facade crate of the workspace: it re-exports every component
//! crate under a stable, discoverable namespace so applications can depend
//! on a single crate. See the [`core`] module for the assembled platform
//! ([`core::Ssd`]) and the README for a guided tour.
//!
//! # Quick start
//!
//! ```
//! use ssdexplorer::core::{Ssd, SsdConfig};
//! use ssdexplorer::hostif::{AccessPattern, Workload};
//!
//! let config = SsdConfig::builder("quickstart")
//!     .topology(4, 4, 2)
//!     .dram_buffers(4)
//!     .build()?;
//! let mut ssd = Ssd::try_new(config)?;
//! let workload = Workload::builder(AccessPattern::SequentialWrite)
//!     .command_count(128)
//!     .build();
//! let report = ssd.simulate(&workload);
//! assert!(report.throughput_mbps > 0.0);
//! # Ok::<(), ssdexplorer::core::ConfigError>(())
//! ```

#![warn(rust_2018_idioms)]

/// Discrete-event simulation kernel (time base, calendar, resources, stats).
pub use ssdx_sim as sim;

/// NAND flash memory array model.
pub use ssdx_nand as nand;

/// DDR2 DRAM data-buffer model.
pub use ssdx_dram as dram;

/// AMBA AHB system-interconnect model.
pub use ssdx_interconnect as interconnect;

/// Controller CPU / firmware cost model.
pub use ssdx_cpu as cpu;

/// BCH / adaptive-BCH error-correction latency models.
pub use ssdx_ecc as ecc;

/// Parametric compressor model.
pub use ssdx_compress as compress;

/// Flash translation layer: WAF abstraction and page-mapped FTL.
pub use ssdx_ftl as ftl;

/// Host interfaces (SATA, NVMe/PCIe), workloads and trace player.
pub use ssdx_hostif as hostif;

/// Channel/way controller model.
pub use ssdx_channel as channel;

/// The assembled SSD virtual platform, configuration and exploration drivers.
pub use ssdx_core as core;
