//! Design-space exploration: find the minimum-resource SSD architecture that
//! saturates a SATA II host interface, then show how an NVMe interface
//! changes the picture (the paper's Figs. 3 and 4 in miniature).
//!
//! The studies fan their sweep points out across all cores through the
//! `ParallelExecutor` — results are byte-identical to a sequential run, so
//! the only observable difference is the wall clock. The custom-sweep coda
//! at the end shows the explicit `run_parallel` API.
//!
//! Run with `cargo run --release --example design_space_exploration`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::configs::table2_configs;
use ssdexplorer::core::{explorer, Axis, Explorer, HostInterfaceConfig, SsdConfig};
use ssdexplorer::hostif::{AccessPattern, Workload};

fn steady_state(mut cfg: SsdConfig) -> SsdConfig {
    // Keep the write cache small relative to the workload so throughput
    // reflects the steady state rather than the cache-fill transient.
    cfg.dram_buffer_capacity = 128 * 1024;
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(8_192)
        .build();
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();

    for host in [
        HostInterfaceConfig::Sata2,
        HostInterfaceConfig::nvme_gen2_x8(),
    ] {
        println!("================================================================");
        println!("host interface: {}", host.name());
        println!("================================================================");
        // The Explorer-based study sweeps every configuration under both
        // cache policies and augments the component reference series.
        let sweep = explorer::host_interface_study(host, &configs, &workload)?;
        print!("{}", sweep.to_table());

        match sweep.optimal_design_point(0.95) {
            Some(best) if !sweep.saturating_points(0.95).is_empty() => println!(
                "\n-> {} is the cheapest architecture that saturates the interface\n",
                best.config_name
            ),
            Some(best) => println!(
                "\n-> no architecture saturates the interface; cheapest overall is {}\n",
                best.config_name
            ),
            None => println!("\n-> no design points were evaluated\n"),
        }

        println!("performance/cost Pareto front:");
        for p in sweep.pareto_front() {
            println!(
                "   {:<4} {:>7.1} MB/s  ({} channels, {} buffers, {} dies)",
                p.config_name, p.ssd_cache_mbps, p.channels, p.dram_buffers, p.total_dies
            );
        }
        println!();
    }

    // A custom sweep on the parallel path: queue depth × channel count,
    // executed with one worker per core and collected in expansion order.
    println!("================================================================");
    println!("custom sweep (parallel): queue depth x channels");
    println!("================================================================");
    let base = steady_state(table2_configs().remove(2));
    let sweep = Explorer::new(base)
        .over(Axis::over("qd", [1u32, 8, 32], |cfg, &qd| {
            cfg.queue_depth_override = Some(qd);
        }))
        .over(Axis::over("channels", [4u32, 8], |cfg, &c| {
            cfg.channels = c;
            cfg.dram_buffers = c;
        }))
        .run_parallel(&workload)?;
    print!("{}", sweep.to_table());
    if let Some(best) = sweep.best_by(|r| r.throughput_mbps) {
        println!("\n-> best point: {}", best.label());
    }
    Ok(())
}
