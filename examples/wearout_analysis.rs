//! Wear-out analysis: how SSD throughput degrades over the NAND rated
//! endurance, and how much an adaptive BCH code recovers compared with a
//! worst-case fixed BCH code (the paper's Fig. 5).
//!
//! Run with `cargo run --release --example wearout_analysis`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::configs::fig5_config;
use ssdexplorer::core::explorer::wearout_study;
use ssdexplorer::ecc::EccScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let endurance: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let base = fig5_config(EccScheme::fixed_bch(40));
    println!("configuration: {}", base.architecture_label());
    println!();

    let fixed = wearout_study(&base, EccScheme::fixed_bch(40), &endurance, 2_048)?;
    let adaptive = wearout_study(&base, EccScheme::adaptive_bch(40), &endurance, 2_048)?;

    println!(
        "{:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "endurance", "fixed read", "adapt read", "fixed write", "adapt write"
    );
    println!("{}", "-".repeat(68));
    for (f, a) in fixed.iter().zip(&adaptive) {
        println!(
            "{:>10.1} | {:>7.1} MB/s {:>7.1} MB/s | {:>7.1} MB/s {:>7.1} MB/s",
            f.normalized_endurance, f.read_mbps, a.read_mbps, f.write_mbps, a.write_mbps
        );
    }

    // Summarise the read-throughput gain of the adaptive code over the
    // usable life of the device.
    let gain: f64 = fixed
        .iter()
        .zip(&adaptive)
        .map(|(f, a)| a.read_mbps / f.read_mbps)
        .sum::<f64>()
        / fixed.len() as f64;
    println!();
    println!(
        "average read-throughput gain of adaptive BCH over fixed BCH: {:.0}%",
        (gain - 1.0) * 100.0
    );
    println!("(the gain disappears at end of life, when both codes must correct 40 bits)");
    Ok(())
}
