//! Host-interface comparison: the same highly parallel SSD back end behind a
//! SATA II link (NCQ, 32 outstanding commands) and behind a PCIe Gen2 x8 +
//! NVMe link (64 K outstanding commands), with and without the DRAM write
//! cache. This reproduces, on one configuration, the key observation behind
//! the paper's Figs. 3 and 4: the SATA command window hides the internal
//! parallelism of no-cache drives, NVMe unveils it.
//!
//! The four variants are expressed as a single two-axis [`Explorer`] sweep
//! rather than four hand-rolled runs.
//!
//! Run with `cargo run --release --example host_interface_comparison`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::{Axis, CachePolicy, Explorer, HostInterfaceConfig, SsdConfig};
use ssdexplorer::hostif::{AccessPattern, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(8_192)
        .build();

    let base = SsdConfig::builder("backend")
        .topology(16, 8, 4)
        .dram_buffers(16)
        .dram_buffer_capacity(128 * 1024)
        .build()?;

    let mut host_axis = Axis::new("host");
    for host in [
        HostInterfaceConfig::Sata2,
        HostInterfaceConfig::nvme_gen2_x8(),
    ] {
        host_axis = host_axis.point(host.name(), move |cfg| cfg.host_interface = host);
    }

    let sweep = Explorer::new(base)
        .over(host_axis)
        .over(
            Axis::new("cache")
                .point("cache", |cfg| cfg.cache_policy = CachePolicy::WriteCache)
                .point("no cache", |cfg| cfg.cache_policy = CachePolicy::NoCache),
        )
        .run(&workload)?;

    println!("back end: 16 channels x 8 ways x 4 dies (512 MLC dies)\n");
    println!(
        "{:<22} {:<10} {:>14}",
        "host interface", "cache", "throughput"
    );
    for point in &sweep.points {
        println!(
            "{:<22} {:<10} {:>9.1} MB/s",
            point.value("host").unwrap_or("?"),
            point.value("cache").unwrap_or("?"),
            point.report.throughput_mbps
        );
    }

    println!();
    println!("With SATA the no-cache drive is pinned near the 32-command NCQ window,");
    println!("regardless of how many dies sit behind the controller; the NVMe queue");
    println!("depth removes that ceiling and the no-cache drive tracks the cached one.");
    Ok(())
}
