//! Host-interface comparison: the same highly parallel SSD back end behind a
//! SATA II link (NCQ, 32 outstanding commands) and behind a PCIe Gen2 x8 +
//! NVMe link (64 K outstanding commands), with and without the DRAM write
//! cache. This reproduces, on one configuration, the key observation behind
//! the paper's Figs. 3 and 4: the SATA command window hides the internal
//! parallelism of no-cache drives, NVMe unveils it.
//!
//! Run with `cargo run --release --example host_interface_comparison`.

use ssdexplorer::core::{CachePolicy, HostInterfaceConfig, Ssd, SsdConfig};
use ssdexplorer::hostif::{AccessPattern, Workload};

fn build(host: HostInterfaceConfig, policy: CachePolicy) -> SsdConfig {
    SsdConfig::builder(format!("{}-{}", host.name(), policy.label()))
        .topology(16, 8, 4)
        .dram_buffers(16)
        .dram_buffer_capacity(128 * 1024)
        .host_interface(host)
        .cache_policy(policy)
        .build()
        .expect("configuration is structurally valid")
}

fn main() {
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(8_192)
        .build();

    println!("back end: 16 channels x 8 ways x 4 dies (512 MLC dies)\n");
    println!(
        "{:<22} {:<10} {:>12} {:>14}",
        "host interface", "cache", "queue depth", "throughput"
    );
    for host in [HostInterfaceConfig::Sata2, HostInterfaceConfig::nvme_gen2_x8()] {
        for policy in [CachePolicy::WriteCache, CachePolicy::NoCache] {
            let config = build(host, policy);
            let queue_depth = config.queue_depth();
            let report = Ssd::new(config).run(&workload);
            println!(
                "{:<22} {:<10} {:>12} {:>9.1} MB/s",
                host.name(),
                policy.label(),
                queue_depth,
                report.throughput_mbps
            );
        }
    }

    println!();
    println!("With SATA the no-cache drive is pinned near the 32-command NCQ window,");
    println!("regardless of how many dies sit behind the controller; the NVMe queue");
    println!("depth removes that ceiling and the no-cache drive tracks the cached one.");
}
