//! Quickstart: build an SSD platform, run a 4 KB sequential-write workload
//! and print the per-component performance report.
//!
//! Run with `cargo run --release --example quickstart`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::{CachePolicy, Ssd, SsdConfig};
use ssdexplorer::hostif::{AccessPattern, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-range SATA II drive: 8 channels, 4 ways, 2 dies per way, with the
    // write cache enabled — close to the consumer drives of the paper's era.
    let config = SsdConfig::builder("quickstart")
        .topology(8, 4, 2)
        .dram_buffers(8)
        .dram_buffer_capacity(512 * 1024)
        .cache_policy(CachePolicy::WriteCache)
        .build()?;

    println!("platform     : {}", config.architecture_label());
    println!(
        "raw capacity : {:.1} GiB",
        config.raw_capacity_bytes() as f64 / (1u64 << 30) as f64
    );
    println!("queue depth  : {}", config.queue_depth());
    println!();

    // Fallible construction: an invalid configuration surfaces as an error
    // instead of a panic.
    let mut ssd = Ssd::try_new(config)?;

    // The paper's canonical workload: 4 KB sequential writes injected as fast
    // as the host interface admits them. `Workload` is a `CommandSource`, so
    // it feeds `simulate` directly.
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(8_192)
        .build();

    let report = ssd.simulate(&workload);
    println!("{report}");

    // The same platform, seen from the component angle: how much of the
    // host-interface best case does this architecture actually deliver?
    let host_best = ssd.host_dram_only_mbps(&workload);
    let flash_best = ssd.flash_path_mbps(&workload);
    println!("host interface + DRAM best case : {host_best:.1} MB/s");
    println!("DRAM -> flash back end          : {flash_best:.1} MB/s");
    println!(
        "delivered by the full pipeline  : {:.1} MB/s",
        report.throughput_mbps
    );
    Ok(())
}
