//! Tail latency under generative workloads: p50/p95/p99/p99.9 per command
//! class, with warmup trimming.
//!
//! Mean throughput hides what fleets are judged on — the latency the
//! slowest percentile of commands sees once queues build. This example
//! runs the four generative workloads (zipfian-skewed, bursty on/off,
//! mixed block sizes, read-modify-write) through the tail-latency study,
//! then drills into one session by hand to show the same histograms
//! mid-run and through a `CompletionLog`.
//!
//! Run with `cargo run --release --example tail_latency`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::{metrics, CommandClass, CompletionLog, Ssd, SsdConfig, SteadyStateCutoff};
use ssdexplorer::hostif::ZipfianWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SsdConfig::builder("tail-demo")
        .topology(4, 2, 2)
        .dram_buffers(4)
        .build()?;
    // Shrink the write cache so the study measures the flash-limited steady
    // state instead of the cache-fill transient.
    config.dram_buffer_capacity = 128 * 1024;

    // The whole suite in one call: four workloads, one eighth of each
    // stream trimmed as warmup, full per-class histograms per point.
    let study = metrics::tail_latency_study(&config, 2_048, SteadyStateCutoff::Commands(256))?;
    println!("tail latency across the generative workload suite:\n");
    print!("{}", study.to_table());

    // The same numbers by hand, for one zipfian-skewed session: attach a
    // log, trim the warmup, and read the histograms both from the session
    // and from the log.
    let zipf = ZipfianWorkload::new(0.99, config.seed)
        .command_count(2_048)
        .footprint_bytes(256 << 20)
        .read_fraction(0.7);
    let mut ssd = Ssd::try_new(config)?;
    let mut log = CompletionLog::with_capacity(2_048, 0);
    let mut session = ssd.session(&zipf);
    session.attach(&mut log);
    session.steady_state(SteadyStateCutoff::Commands(256));
    let report = session.finish();

    println!("\nzipfian session, read class:");
    let read = report.tail(CommandClass::Read);
    println!("  steady-state samples : {}", read.count);
    println!("  mean                 : {}", read.mean);
    println!("  p50 / p95            : {} / {}", read.p50, read.p95);
    println!("  p99 / p99.9          : {} / {}", read.p99, read.p999);
    println!("  worst                : {}", read.max);

    // A CompletionLog digests to the same histograms post-hoc — handy when
    // the warmup cutoff is only decided after the run.
    let from_log = log.class_histograms(SteadyStateCutoff::Commands(256));
    assert_eq!(from_log, *report.class_latency);
    let p99_all = from_log.total().quantile(0.99);
    println!("\np99 across all classes       : {p99_all}");
    println!(
        "tail amplification (p99/p50) : {:.1}x",
        read.p99.as_ns_f64() / read.p50.as_ns_f64().max(1.0)
    );
    Ok(())
}
