//! Validation scenario: run the four IOZone-style synthetic workloads
//! (sequential/random read/write, 4 KB payloads) against the OCZ-Vertex-like
//! configuration and compare with the device reference values (the paper's
//! Fig. 2).
//!
//! Run with `cargo run --release --example validation_ocz_vertex`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::configs::ocz_vertex_like;
use ssdexplorer::core::Ssd;
use ssdexplorer::hostif::{AccessPattern, Workload};

/// Reference throughput of the physical drive. The paper plots these values
/// in Fig. 2 without tabulating them, so the numbers below are
/// approximations consistent with the figure and with public reviews of the
/// device; see EXPERIMENTS.md for the discussion.
const REFERENCE_MBPS: [(AccessPattern, f64); 4] = [
    (AccessPattern::SequentialWrite, 160.0),
    (AccessPattern::SequentialRead, 200.0),
    (AccessPattern::RandomWrite, 22.0),
    (AccessPattern::RandomRead, 145.0),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ocz_vertex_like();
    println!(
        "simulated drive: {} ({})",
        config.name,
        config.architecture_label()
    );
    println!();
    let mut ssd = Ssd::try_new(config)?;

    println!(
        "{:<20} {:>14} {:>14} {:>8}",
        "workload", "SSDExplorer", "device ref", "error"
    );
    let mut worst_error: f64 = 0.0;
    for (pattern, reference) in REFERENCE_MBPS {
        // A shorter run than the full experiment harness, enough to get out
        // of the cache-fill transient for writes.
        let workload = Workload::builder(pattern)
            .command_count(65_536)
            .footprint_bytes(8 << 30)
            .build();
        let report = ssd.simulate(&workload);
        let error = (report.throughput_mbps - reference).abs() / reference * 100.0;
        worst_error = worst_error.max(error);
        println!(
            "{:<20} {:>9.1} MB/s {:>9.1} MB/s {:>7.1}%",
            pattern.label(),
            report.throughput_mbps,
            reference,
            error
        );
    }
    println!();
    println!("worst-case deviation from the device reference: {worst_error:.1}%");
    Ok(())
}
