//! Session probes: observe an SSD simulation *while it runs* instead of
//! only reading the final report.
//!
//! A `SimSession` is stepped command by command; an attached `Probe`
//! receives every completion record plus periodic utilization snapshots, so
//! latency, queue depth and per-component busy fractions can be sampled
//! mid-run — the fine-grained visibility the paper's platform is built for.
//! The command stream itself comes from a closure-backed `CommandSource`,
//! showing that arbitrary generators plug into the same entry point as the
//! built-in workloads.
//!
//! Run with `cargo run --release --example session_probes`.

// Examples are the user-facing surface: printing results is their job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use ssdexplorer::core::{Probe, SessionSnapshot, Ssd, SsdConfig};
use ssdexplorer::hostif::{source_fn, HostCommand, HostOp};
use ssdexplorer::sim::SimTime;

/// A probe that keeps the periodic snapshots for a latency/utilization
/// timeline and tracks the worst single-command latency it saw.
#[derive(Default)]
struct Timeline {
    samples: Vec<SessionSnapshot>,
    worst_latency: SimTime,
}

impl Probe for Timeline {
    fn on_command(&mut self, record: &ssdexplorer::core::CommandRecord) {
        self.worst_latency = self.worst_latency.max(record.latency());
    }

    fn on_snapshot(&mut self, snapshot: &SessionSnapshot) {
        self.samples.push(*snapshot);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SsdConfig::builder("probed")
        .topology(8, 4, 2)
        .dram_buffers(8)
        .dram_buffer_capacity(128 * 1024)
        .build()?;
    let mut ssd = Ssd::try_new(config)?;

    // A closure-backed source: bursts of 4 KB writes alternating between two
    // hot regions — something no built-in `Workload` pattern expresses.
    let source = source_fn("bursty", 4_096, |i| HostCommand {
        id: i,
        op: HostOp::Write,
        offset: (i % 8) * (64 << 20) + (i / 8) * 4096,
        bytes: 4096,
        issue_at: SimTime::ZERO,
    });

    let mut timeline = Timeline::default();
    let mut session = ssd.session(&source);
    session.attach(&mut timeline);
    session.sample_every(512);

    // Drive the first simulated 5 ms step by step, then let it finish.
    let executed = session.run_until(SimTime::from_us(5_000));
    println!(
        "after 5 simulated ms: {executed} commands done, {} still queued\n",
        session.remaining()
    );
    let report = session.finish();

    println!(
        "{:>10} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "time", "commands", "mean lat", "host", "chan", "die"
    );
    for s in &timeline.samples {
        println!(
            "{:>10} {:>10} {:>12} {:>7.0}% {:>7.0}% {:>7.0}%",
            s.at,
            s.commands_completed,
            s.mean_latency,
            s.utilization.host_link * 100.0,
            s.utilization.channel_bus * 100.0,
            s.utilization.die * 100.0,
        );
    }

    println!();
    println!("worst single-command latency : {}", timeline.worst_latency);
    println!("final report:\n{report}");
    Ok(())
}
